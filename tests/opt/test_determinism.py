"""Deterministic pass ordering: the pipeline's output must not depend on
Python hash randomization (no ``id()``-ordered dict/set iteration may
leak into the rewritten module).  Two subprocesses with different
``PYTHONHASHSEED`` values must print byte-identical optimized IR."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

_SCRIPT = r"""
import sys
from repro.frontend import compile_source
from repro.ir.printer import print_module
from repro.opt import optimize_module
from repro.splash2 import kernel
from tests.conftest import FIGURE_1

for name, source in [("figure1", FIGURE_1),
                     ("radix", kernel("radix").source)]:
    module = compile_source(source, name)
    report = optimize_module(module, 2)
    sys.stdout.write(print_module(module))
    sys.stdout.write("\n#passes %r\n"
                     % [(s.name, s.removed, s.replaced)
                        for s in report.passes])
"""


def _optimized_ir(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", ".."),
         os.path.join(os.path.dirname(__file__), "..", "..", "src"),
         env.get("PYTHONPATH", "")])
    proc = subprocess.run([sys.executable, "-c", _SCRIPT],
                          capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
def test_pipeline_output_is_hashseed_invariant():
    first = _optimized_ir("0")
    second = _optimized_ir("4242")
    assert first == second
