"""ArtifactStore: cache hits, corruption healing, LRU gc, verify."""

import os
import pickle
import time

import pytest

from repro.errors import StoreCorruptError, StoreError, StoreSchemaError
from repro.runtime.program import resolve_backend, resolve_opt_level
from repro.store import ARTIFACT_SCHEMA, ArtifactStore, program_key
from repro.telemetry import Telemetry
from tests.conftest import FIGURE_1


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


class TestProgramCache:
    def test_miss_then_hit(self, store):
        first = store.get_program(FIGURE_1, "fig1")
        assert store.counters == {"store.cache.miss": 1}
        second = store.get_program(FIGURE_1, "fig1")
        assert store.counters["store.cache.hit"] == 1
        # The hit deserializes an equivalent, runnable program.
        assert second.name == first.name
        assert second.checked_branch_count() == first.checked_branch_count()

    def test_hit_lands_on_telemetry(self, store):
        store.get_program(FIGURE_1, "fig1")
        tel = Telemetry()
        store.get_program(FIGURE_1, "fig1", telemetry=tel)
        assert tel.snapshot().counter("store.cache.hit") == 1

    def test_loaded_program_runs(self, store):
        store.get_program(FIGURE_1, "fig1")
        program = store.get_program(FIGURE_1, "fig1")

        def setup(memory):
            memory.set_scalar("nprocs", 2)
            memory.set_array("gp", [5, 40] * 32)

        result = program.run_protected(2, setup=setup)
        assert result.status == "ok"

    def test_corrupt_entry_is_a_miss_and_self_heals(self, store):
        store.get_program(FIGURE_1, "fig1")
        # Resolve the env knobs exactly as get_program does, so the test
        # holds under forced REPRO_OPT_LEVEL/REPRO_BACKEND environments
        # (CI optimizer matrix).
        key = program_key(FIGURE_1, "fig1",
                          opt_level=resolve_opt_level(None),
                          backend=resolve_backend(None))
        data = os.path.join(store._entry_dir(key), "data.pkl")
        with open(data, "wb") as handle:
            handle.write(b"not a pickle")
        program = store.get_program(FIGURE_1, "fig1")
        assert program.name == "fig1"
        assert store.counters["store.cache.miss"] == 2
        # healed: strict load works again
        assert store.load(key, "program").name == "fig1"


class TestStrictLoad:
    def test_missing_raises(self, store):
        with pytest.raises(StoreError):
            store.load("0" * 64, "program")

    def test_corrupt_raises(self, store):
        store.put("a" * 64, "program", {"x": 1})
        with open(os.path.join(store._entry_dir("a" * 64), "data.pkl"),
                  "wb") as handle:
            handle.write(b"\x80garbage")
        with pytest.raises(StoreCorruptError):
            store.load("a" * 64, "program")

    def test_schema_mismatch_raises(self, store):
        directory = store._entry_dir("b" * 64)
        os.makedirs(directory)
        with open(os.path.join(directory, "data.pkl"), "wb") as handle:
            pickle.dump({"schema": ARTIFACT_SCHEMA + 1, "kind": "program",
                         "payload": 1}, handle)
        with pytest.raises(StoreSchemaError):
            store.load("b" * 64, "program")

    def test_kind_mismatch_raises(self, store):
        store.put("c" * 64, "golden", {"x": 1})
        with pytest.raises(StoreCorruptError):
            store.load("c" * 64, "program")


class TestMaintenance:
    def fill(self, store, n):
        for i in range(n):
            store.put(("%02x" % i) * 32, "golden", {"i": i}, name="g%d" % i)

    def test_entries_and_total(self, store):
        self.fill(store, 3)
        entries = store.entries()
        assert len(entries) == 3
        assert store.total_bytes() == sum(e.size for e in entries)

    def test_gc_max_entries_evicts_lru(self, store):
        self.fill(store, 4)
        # Touch entry 0 so it is the freshest; 1 is now the oldest.
        time.sleep(0.02)
        store.load("00" * 32, "golden")
        evicted = store.gc(max_entries=3)
        assert len(evicted) == 1
        assert evicted[0].key != "00" * 32
        assert len(store.entries()) == 3

    def test_gc_max_bytes(self, store):
        self.fill(store, 4)
        per = store.entries()[0].size
        evicted = store.gc(max_bytes=2 * per)
        assert len(evicted) == 2
        assert store.total_bytes() <= 2 * per

    def test_gc_dry_run(self, store):
        self.fill(store, 2)
        assert len(store.gc(max_entries=0, dry_run=True)) == 2
        assert len(store.entries()) == 2

    def test_verify_reports_and_deletes(self, store):
        self.fill(store, 2)
        bad = store.entries()[0]
        with open(os.path.join(bad.path, "data.pkl"), "wb") as handle:
            handle.write(b"junk")
        problems = store.verify()
        assert len(problems) == 1 and problems[0][0].key == bad.key
        assert len(store.entries()) == 2  # report only
        store.verify(delete=True)
        assert len(store.entries()) == 1


class TestVulnKind:
    """Per-function vulnerability summaries share the generic entry
    machinery; pin the behaviors the analyzer relies on."""

    def summarize(self, store, fingerprint, payload):
        from repro.store import vuln_key
        from repro.lint.vuln import VULN_SCHEMA
        key = vuln_key(fingerprint, VULN_SCHEMA)
        return key, store.get_vuln(key, lambda: payload)

    def test_miss_then_hit(self, store):
        key, first = self.summarize(store, "func f", {"function": "f"})
        assert store.counters == {"store.vuln.miss": 1}
        _, second = self.summarize(store, "func f", {"function": "DIFFERENT"})
        assert store.counters["store.vuln.hit"] == 1
        assert second == first  # compute() not called on a hit

    def test_schema_bump_changes_key(self, store):
        from repro.store import vuln_key
        assert vuln_key("func f", 1) != vuln_key("func f", 2)

    def test_corrupt_summary_falls_back_to_cold_analysis(self, store):
        key, _ = self.summarize(store, "func f", {"function": "f"})
        with open(os.path.join(store._entry_dir(key), "data.pkl"),
                  "wb") as handle:
            handle.write(b"not a pickle")
        calls = []

        def compute():
            calls.append(1)
            return {"function": "f", "fresh": True}

        healed = store.get_vuln(key, compute)
        assert calls == [1]
        assert healed["fresh"] is True
        assert store.counters["store.vuln.miss"] == 2
        # healed in place: strict load works again
        assert store.load(key, "vuln")["fresh"] is True

    def test_kind_mismatch_rejected(self, store):
        store.put("d" * 64, "golden", {"x": 1})
        with pytest.raises(StoreCorruptError):
            store.load("d" * 64, "vuln")

    def test_gc_evicts_stale_vuln_entries_first(self, store):
        keys = []
        for i in range(3):
            key, _ = self.summarize(store, "func f%d" % i, {"i": i})
            keys.append(key)
            time.sleep(0.02)
        # Re-read the oldest summary: it becomes the freshest.
        store.get_vuln(keys[0], lambda: pytest.fail("should hit"))
        evicted = store.gc(max_entries=2)
        assert [e.key for e in evicted] == [keys[1]]
        kept = {e.key for e in store.entries()}
        assert kept == {keys[0], keys[2]}

    def test_verify_flags_corrupt_vuln_entry(self, store):
        key, _ = self.summarize(store, "func f", {"function": "f"})
        with open(os.path.join(store._entry_dir(key), "data.pkl"),
                  "wb") as handle:
            handle.write(b"junk")
        problems = store.verify()
        assert [p[0].key for p in problems] == [key]
        store.verify(delete=True)
        assert store.entries() == []

    def test_mixed_kind_gc_is_lru_across_kinds(self, store):
        store.put("e" * 64, "golden", {"x": 1}, name="g")
        time.sleep(0.02)
        key, _ = self.summarize(store, "func f", {"function": "f"})
        evicted = store.gc(max_entries=1)
        assert [e.key for e in evicted] == ["e" * 64]
        assert [e.kind for e in store.entries()] == ["vuln"]
