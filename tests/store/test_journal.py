"""Journal format: crash artifacts vs corruption, schema and plan guards.

The contract under test (satellite: "store corruption paths"): a torn
*final* line is a crash artifact and is dropped on resume; every other
malformed state — mid-file truncation, unknown schema version, foreign
plan hash — raises a clear :class:`StoreError` subclass instead of a
wrong silent resume.
"""

import json

import pytest

from repro.errors import (
    PlanMismatchError,
    StoreCorruptError,
    StoreError,
    StoreSchemaError,
)
from repro.faults import FaultType
from repro.faults.campaign import InjectionRecord
from repro.faults.models import FaultSpec
from repro.faults.outcomes import Outcome
from repro.store import (
    JOURNAL_SCHEMA,
    JournalWriter,
    read_journal,
    record_to_dict,
)


def make_record(index: int) -> InjectionRecord:
    return InjectionRecord(
        spec=FaultSpec(fault_type=FaultType.BRANCH_FLIP, thread_id=1,
                       branch_index=5 + index, rng_seed=42),
        outcome=Outcome.DETECTED, baseline_outcome=Outcome.SDC,
        flipped_branch=True, detail="test")


def write_journal(path, n=3, plan_hash="h" * 64, injections=10):
    plan = {"schema": JOURNAL_SCHEMA, "injections": injections,
            "fault_type": "branch-flip", "seed": 1}
    with JournalWriter(str(path), fsync=False) as writer:
        writer.write_header(plan_hash, plan, "g" * 64)
        for i in range(n):
            writer.append(i, make_record(i))
    return str(path)


class TestRoundTrip:
    def test_records_survive(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", n=3)
        replay = read_journal(path)
        assert sorted(replay.records) == [0, 1, 2]
        record = replay.records[1]
        assert record.spec.branch_index == 6
        assert record.outcome is Outcome.DETECTED
        assert record.baseline_outcome is Outcome.SDC
        assert record.flipped_branch is True
        assert replay.missing_indices(10) == [3, 4, 5, 6, 7, 8, 9]
        assert replay.partial_tail_dropped == 0

    def test_duplicates_keep_first(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", n=2)
        with open(path, "a") as handle:
            line = dict(record_to_dict(1, make_record(99)))
            handle.write(json.dumps(line) + "\n")
        replay = read_journal(path)
        assert replay.duplicates_dropped == 1
        assert replay.records[1].spec.branch_index == 6  # not 104


class TestCrashArtifacts:
    def test_torn_final_line_dropped_on_resume(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", n=3)
        raw = open(path).read().rstrip("\n")
        with open(path, "w") as handle:
            handle.write(raw[:-25])  # SIGKILL mid-write of the last record
        replay = read_journal(path, allow_partial_tail=True)
        assert sorted(replay.records) == [0, 1]
        assert replay.partial_tail_dropped == 1

    def test_torn_final_line_strict_raises(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", n=2)
        with open(path, "a") as handle:
            handle.write('{"kind": "injection", "ind')
        with pytest.raises(StoreCorruptError):
            read_journal(path, allow_partial_tail=False)


class TestCorruption:
    def test_midfile_truncated_line_raises(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", n=3)
        lines = open(path).read().splitlines()
        lines[2] = lines[2][:30]  # damage a non-final record
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(StoreCorruptError) as info:
            read_journal(path)
        assert "line 3" in str(info.value)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("")
        with pytest.raises(StoreCorruptError):
            read_journal(str(path))

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        record = record_to_dict(0, make_record(0))
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(StoreCorruptError):
            read_journal(str(path))

    def test_unreadable_path_raises_store_error(self, tmp_path):
        with pytest.raises(StoreError):
            read_journal(str(tmp_path / "missing.jsonl"))

    def test_out_of_range_index_raises(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", n=1, injections=10)
        with open(path, "a") as handle:
            handle.write(json.dumps(record_to_dict(10, make_record(0)))
                         + "\n")
            handle.write(json.dumps(record_to_dict(2, make_record(2)))
                         + "\n")
        with pytest.raises(StoreCorruptError):
            read_journal(path)

    def test_malformed_spec_raises(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", n=1)
        bad = record_to_dict(1, make_record(1))
        bad["spec"]["fault_type"] = "not-a-fault"
        with open(path, "a") as handle:
            handle.write(json.dumps(bad) + "\n")
            handle.write(json.dumps(record_to_dict(2, make_record(2)))
                         + "\n")
        with pytest.raises(StoreCorruptError):
            read_journal(path)


class TestSchemaAndPlanGuards:
    def test_header_schema_mismatch_raises(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", n=1)
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        header["schema"] = JOURNAL_SCHEMA + 1
        lines[0] = json.dumps(header)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(StoreSchemaError):
            read_journal(path)

    def test_record_schema_mismatch_raises(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", n=1)
        bad = record_to_dict(1, make_record(1))
        bad["schema"] = 999
        with open(path, "a") as handle:
            handle.write(json.dumps(bad) + "\n")
            handle.write(json.dumps(record_to_dict(2, make_record(2)))
                         + "\n")
        with pytest.raises(StoreSchemaError):
            read_journal(path)

    def test_plan_hash_mismatch_names_fields(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", n=1, plan_hash="a" * 64)
        with pytest.raises(PlanMismatchError) as info:
            read_journal(path, expect_plan_hash="b" * 64,
                         expect_plan={"schema": JOURNAL_SCHEMA,
                                      "injections": 10,
                                      "fault_type": "branch-flip",
                                      "seed": 2})
        assert "seed" in str(info.value)

    def test_matching_plan_hash_accepted(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", n=1, plan_hash="a" * 64)
        replay = read_journal(path, expect_plan_hash="a" * 64)
        assert replay.plan_hash == "a" * 64
