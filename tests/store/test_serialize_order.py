"""Wire-order contract of serialized campaign results: records ship in
injection-index order, reassemble by index, and reject corrupt
indexing — so fetch payloads are byte-identical under any jobs=N."""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreCorruptError
from repro.faults.campaign import run_campaign
from repro.faults.spec import CampaignSpec
from repro.store.serialize import result_from_dict, result_to_dict

SPEC = dict(nthreads=4, injections=24, seed=13, fault="flip")


@pytest.fixture(scope="module")
def serial_result():
    return run_campaign(CampaignSpec.for_kernel("radix", **SPEC),
                        jobs=1, keep_records=True)


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def test_records_ship_in_index_order(serial_result):
    payload = result_to_dict(serial_result)
    indices = [record["index"] for record in payload["records"]]
    assert indices == sorted(indices)
    assert indices == list(range(len(indices)))


def test_payload_byte_identical_across_jobs(serial_result):
    sharded = run_campaign(CampaignSpec.for_kernel("radix", **SPEC),
                           jobs=4, keep_records=True)
    assert (canonical(result_to_dict(sharded))
            == canonical(result_to_dict(serial_result)))


def test_shuffled_payload_reassembles_in_index_order(serial_result):
    payload = result_to_dict(serial_result)
    shuffled = dict(payload)
    # Worst-case arrival order: fully reversed.
    shuffled["records"] = list(reversed(payload["records"]))
    rebuilt = result_from_dict(shuffled)
    assert canonical(result_to_dict(rebuilt)) == canonical(payload)
    for index, record in enumerate(rebuilt.records):
        assert record.spec == serial_result.records[index].spec
        assert record.outcome == serial_result.records[index].outcome


def test_duplicate_record_index_is_corrupt(serial_result):
    payload = result_to_dict(serial_result)
    broken = dict(payload)
    broken["records"] = list(payload["records"])
    broken["records"][3] = dict(broken["records"][3], index=0)
    with pytest.raises(StoreCorruptError, match="duplicate record index 0"):
        result_from_dict(broken)


def test_out_of_range_record_index_is_corrupt(serial_result):
    payload = result_to_dict(serial_result)
    for bad in (len(payload["records"]), -1):
        broken = dict(payload)
        broken["records"] = list(payload["records"])
        broken["records"][0] = dict(broken["records"][0], index=bad)
        with pytest.raises(StoreCorruptError, match="outside campaign"):
            result_from_dict(broken)
