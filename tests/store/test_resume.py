"""Resume identity: a resumed campaign is indistinguishable from an
uninterrupted one.

Two interruption models are exercised against the acceptance criterion
(stats, per-injection records, and event trace — wall-clock timers
excluded — identical to the same-seed uninterrupted run):

* a journal truncated in-process, including a torn final line, the
  deterministic stand-in for any crash point; and
* a real ``SIGKILL`` delivered to a ``repro-minic inject`` subprocess
  mid-campaign (the radix kernel), resumed with ``--resume``.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.errors import PlanMismatchError, StoreError
from repro.faults import CampaignConfig, FaultType, run_campaign
from repro.runtime import ParallelProgram
from repro.splash2 import kernel
from tests.conftest import FIGURE_1, figure1_setup

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def config(**overrides):
    base = dict(nthreads=4, injections=12, seed=9,
                output_globals=("result",))
    base.update(overrides)
    return CampaignConfig(**base)


def run(program, journal=None, resume=False, telemetry=True, **overrides):
    return run_campaign(program, FaultType.BRANCH_FLIP, config(**overrides),
                        setup=figure1_setup(4), keep_records=True,
                        telemetry=telemetry, journal=journal, resume=resume)


def record_view(record):
    return (record.spec, record.outcome, record.baseline_outcome,
            record.flipped_branch, record.detail)


def assert_identical(resumed, full):
    """The acceptance check: stats, records, events — timers excluded."""
    assert resumed.stats.counts == full.stats.counts
    assert resumed.stats.baseline_counts == full.stats.baseline_counts
    assert ([record_view(r) for r in resumed.records]
            == [record_view(r) for r in full.records])
    if full.telemetry is not None:
        assert resumed.telemetry.events == full.telemetry.events
        full_counters = {k: v for k, v in full.telemetry.counters.items()
                         if not k.startswith("store.")}
        resumed_counters = {k: v
                            for k, v in resumed.telemetry.counters.items()
                            if not k.startswith("store.")}
        assert resumed_counters == full_counters


def truncate_journal(path, keep_records, torn_bytes=0):
    """Keep the header plus ``keep_records`` lines; optionally append the
    torn prefix of the next line, imitating a kill mid-``write``."""
    lines = open(path).read().splitlines()
    kept = lines[:1 + keep_records]
    with open(path, "w") as handle:
        handle.write("\n".join(kept) + "\n")
        if torn_bytes:
            handle.write(lines[1 + keep_records][:torn_bytes])


class TestResumeIdentity:
    @pytest.fixture(scope="class")
    def program(self):
        return ParallelProgram(FIGURE_1, "figure1")

    @pytest.fixture(scope="class")
    def full(self, program, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("full") / "journal.jsonl")
        return run(program, journal=path)

    def test_truncated_journal_resume_matches(self, program, full,
                                              tmp_path):
        path = str(tmp_path / "journal.jsonl")
        run(program, journal=path)
        truncate_journal(path, keep_records=5, torn_bytes=40)
        resumed = run(program, journal=path, resume=True)
        assert_identical(resumed, full)
        hits = resumed.telemetry.counters
        assert hits["store.journal.replayed"] == 5
        assert hits["store.journal.partial_tail_dropped"] == 1
        assert hits["store.journal.appended"] == 7

    def test_header_only_resume_matches(self, program, full, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        run(program, journal=path)
        truncate_journal(path, keep_records=0)
        resumed = run(program, journal=path, resume=True)
        assert_identical(resumed, full)

    def test_complete_journal_resume_is_noop(self, program, full,
                                             tmp_path):
        path = str(tmp_path / "journal.jsonl")
        run(program, journal=path)
        resumed = run(program, journal=path, resume=True)
        assert_identical(resumed, full)
        assert resumed.telemetry.counters["store.journal.replayed"] == 12

    def test_existing_journal_without_resume_refused(self, program,
                                                     tmp_path):
        path = str(tmp_path / "journal.jsonl")
        run(program, journal=path, telemetry=False, injections=2)
        with pytest.raises(StoreError):
            run(program, journal=path, telemetry=False, injections=2)

    def test_resume_rejects_changed_seed(self, program, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        run(program, journal=path, telemetry=False, injections=2)
        with pytest.raises(PlanMismatchError) as info:
            run(program, journal=path, resume=True, telemetry=False,
                injections=2, seed=10)
        assert "seed" in str(info.value)

    def test_resume_rejects_changed_program(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        run(ParallelProgram(FIGURE_1, "figure1"), journal=path,
            telemetry=False, injections=2)
        other = ParallelProgram(FIGURE_1 + "\n", "fig1b")
        with pytest.raises(PlanMismatchError):
            run(other, journal=path, resume=True, telemetry=False,
                injections=2)


@pytest.mark.slow
class TestSigkillResume:
    """The end-to-end acceptance scenario: kill -9 a radix campaign,
    resume it, and compare against the uninterrupted same-seed run."""

    NTHREADS = 2
    INJECTIONS = 40
    SEED = 2026

    def cli(self, journal, resume=False):
        argv = [sys.executable, "-m", "repro.cli", "inject",
                "kernel:radix", "-t", str(self.NTHREADS),
                "-n", str(self.INJECTIONS), "--seed", str(self.SEED),
                "--journal", journal]
        if resume:
            argv.append("--resume")
        env = dict(os.environ, PYTHONPATH=SRC_ROOT)
        env.pop("REPRO_JOBS", None)  # serial: kill loses at most one
        env.pop("REPRO_STORE", None)
        return argv, env

    def journal_lines(self, path):
        if not os.path.exists(path):
            return 0
        with open(path) as handle:
            return sum(1 for _ in handle)

    def run_uninterrupted(self):
        spec = kernel("radix")
        cfg = CampaignConfig(nthreads=self.NTHREADS,
                             injections=self.INJECTIONS, seed=self.SEED,
                             output_globals=tuple(spec.output_globals))
        return run_campaign(spec.program(), FaultType.BRANCH_FLIP, cfg,
                            setup=spec.setup(self.NTHREADS),
                            keep_records=True)

    def test_sigkill_then_resume_matches(self, tmp_path):
        journal = str(tmp_path / "radix.jsonl")
        argv, env = self.cli(journal)
        proc = subprocess.Popen(argv, env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            deadline = time.time() + 120
            # Wait for a handful of checkpointed injections, then kill
            # hard mid-campaign.
            while self.journal_lines(journal) < 6:
                assert proc.poll() is None, \
                    "campaign finished before it could be killed"
                assert time.time() < deadline, "no journal progress"
                time.sleep(0.05)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        interrupted = self.journal_lines(journal) - 1
        assert 0 < interrupted < self.INJECTIONS

        result = subprocess.run(self.cli(journal, resume=True)[0],
                                env=env, capture_output=True, text=True,
                                timeout=300)
        assert result.returncode == 0, result.stderr
        assert "journal: %s (resumed)" % journal in result.stdout

        # The resumed journal replays into exactly the uninterrupted
        # campaign: same stats, same per-injection records.
        full = self.run_uninterrupted()
        spec = kernel("radix")
        cfg = CampaignConfig(nthreads=self.NTHREADS,
                             injections=self.INJECTIONS, seed=self.SEED,
                             output_globals=tuple(spec.output_globals))
        resumed = run_campaign(spec.program(), FaultType.BRANCH_FLIP,
                               cfg, setup=spec.setup(self.NTHREADS),
                               keep_records=True, journal=journal,
                               resume=True)
        assert resumed.telemetry is None is full.telemetry
        assert_identical(resumed, full)
        assert len(resumed.records) == self.INJECTIONS
