"""Stable hashing: the cache-correctness foundation."""

from repro.analysis import AnalysisConfig
from repro.faults import CampaignConfig, FaultType
from repro.store import (
    golden_fingerprint,
    golden_key,
    plan_fingerprint,
    program_key,
)


class TestProgramKey:
    def test_deterministic(self):
        a = program_key("func slave() {}", "p")
        b = program_key("func slave() {}", "p")
        assert a == b and len(a) == 64

    def test_source_changes_key(self):
        assert (program_key("func slave() {}", "p")
                != program_key("func slave() { local int x; }", "p"))

    def test_name_entry_and_options_change_key(self):
        base = program_key("s", "p")
        assert program_key("s", "q") != base
        assert program_key("s", "p", entry="worker") != base
        assert program_key(
            "s", "p",
            analysis_config=AnalysisConfig(check_stores=True)) != base

    def test_default_config_distinct_from_explicit(self):
        # None means "package defaults", which may drift across versions;
        # an explicit config pins the fields, so the keys must differ.
        assert (program_key("s", "p")
                != program_key("s", "p", analysis_config=AnalysisConfig()))

    def test_opt_and_backend_participate_only_when_non_default(self):
        base = program_key("s", "p")
        # Pre-optimizer keys stay addressable: explicit defaults alias
        # the historical key.
        assert program_key("s", "p", opt_level=0,
                           backend="interpreter") == base
        assert program_key("s", "p", opt_level=2) != base
        assert program_key("s", "p", backend="closure") != base
        assert (program_key("s", "p", opt_level=2)
                != program_key("s", "p", opt_level=1))


class TestClosureKey:
    def test_every_input_participates(self):
        from repro.store.hashing import closure_key
        base = closure_key("module m {}", (1.0, 2.0), 4, 1)
        assert closure_key("module m {}", (1.0, 2.0), 4, 1) == base
        assert closure_key("module n {}", (1.0, 2.0), 4, 1) != base
        assert closure_key("module m {}", (1.0, 4.0), 4, 1) != base
        assert closure_key("module m {}", (1.0, 2.0), 8, 1) != base
        assert closure_key("module m {}", (1.0, 2.0), 4, 2) != base


class TestPlanFingerprint:
    def make(self, **overrides):
        config = CampaignConfig(**overrides)
        return plan_fingerprint("k" * 64, FaultType.BRANCH_FLIP, config)

    def test_stable_and_carries_plan_dict(self):
        digest, plan = self.make(seed=5)
        digest2, _ = self.make(seed=5)
        assert digest == digest2
        assert plan["seed"] == 5
        assert plan["fault_type"] == "branch-flip"

    def test_every_knob_participates(self):
        base, _ = self.make()
        assert self.make(seed=1)[0] != base
        assert self.make(injections=7)[0] != base
        assert self.make(nthreads=8)[0] != base
        assert self.make(output_globals=("x",))[0] != base
        assert self.make(quantize_bits=3)[0] != base
        assert self.make(hang_factor=5)[0] != base
        assert self.make(quantum=64)[0] != base

    def test_telemetry_flag_participates(self):
        config = CampaignConfig()
        with_tel = plan_fingerprint("k" * 64, FaultType.BRANCH_FLIP,
                                    config, telemetry=True)[0]
        without = plan_fingerprint("k" * 64, FaultType.BRANCH_FLIP,
                                   config, telemetry=False)[0]
        assert with_tel != without

    def test_fault_type_participates(self):
        config = CampaignConfig()
        assert (plan_fingerprint("k" * 64, FaultType.BRANCH_FLIP, config)[0]
                != plan_fingerprint("k" * 64, FaultType.BRANCH_CONDITION,
                                    config)[0])


class TestGoldenHashes:
    def test_golden_key_inputs(self):
        base = golden_key("p" * 64, 4, 0, 32, ("r",))
        assert golden_key("p" * 64, 8, 0, 32, ("r",)) != base
        assert golden_key("p" * 64, 4, 1, 32, ("r",)) != base
        assert golden_key("p" * 64, 4, 0, 16, ("r",)) != base
        assert golden_key("p" * 64, 4, 0, 32, ("r", "s")) != base

    def test_golden_fingerprint_over_outputs(self):
        sig = ("ok", ((0, (1, 2)),))
        base = golden_fingerprint(sig, {1: 10, 2: 12}, 500)
        assert golden_fingerprint(sig, {1: 10, 2: 12}, 500) == base
        assert golden_fingerprint(sig, {1: 10, 2: 13}, 500) != base
        assert golden_fingerprint(sig, {1: 10, 2: 12}, 501) != base
        assert golden_fingerprint(("ok",), {1: 10, 2: 12}, 500) != base

    def test_branch_count_order_irrelevant(self):
        sig = ("ok",)
        assert (golden_fingerprint(sig, {1: 10, 2: 12}, 5)
                == golden_fingerprint(sig, {2: 12, 1: 10}, 5))
