"""Tests for the ParallelProgram facade and the cost model."""

import pytest

from repro.errors import SimulationError
from repro.frontend import compile_source
from repro.monitor import MODE_FEED, MODE_FULL
from repro.runtime import CostModel, Machine, ParallelProgram, RunConfig
from tests.conftest import FIGURE_1, figure1_setup


@pytest.fixture(scope="module")
def program():
    return ParallelProgram(FIGURE_1, "fig1")


class TestParallelProgram:
    def test_two_images_compiled(self, program):
        assert program.baseline.bw_metadata is None
        assert program.protected.bw_metadata is not None
        assert program.checked_branch_count() == 4

    def test_monitor_mode_none_runs_baseline(self, program):
        result = program.run(RunConfig(nthreads=4, monitor_mode=None),
                             setup=figure1_setup(4))
        assert result.monitor is None
        assert result.status == "ok"

    def test_monitor_mode_full_checks(self, program):
        result = program.run(RunConfig(nthreads=4, monitor_mode=MODE_FULL),
                             setup=figure1_setup(4))
        assert result.monitor is not None
        assert result.monitor.stats.instances_checked > 0

    def test_monitor_mode_feed_sends_without_checking(self, program):
        result = program.run(RunConfig(nthreads=4, monitor_mode=MODE_FEED),
                             setup=figure1_setup(4))
        assert result.monitor.messages_received > 0
        assert result.monitor.stats.instances_checked == 0

    def test_unknown_monitor_mode_rejected(self, program):
        with pytest.raises(ValueError):
            program.run(RunConfig(nthreads=4, monitor_mode="half"))

    def test_instrumented_module_requires_monitor(self, program):
        with pytest.raises(SimulationError):
            Machine(program.protected, 2, entry="slave", monitor=None)

    def test_overhead_uses_feed_mode(self, program):
        overhead = program.overhead(4, setup=figure1_setup(4))
        assert 1.0 < overhead < 10.0

    def test_overhead_shrinks_with_threads(self, program):
        at2 = program.overhead(2, setup=figure1_setup(2))
        at16 = program.overhead(16, setup=figure1_setup(16))
        assert at16 < at2

    def test_entry_mismatch_rejected(self):
        from repro.analysis import AnalysisConfig
        with pytest.raises(ValueError):
            ParallelProgram(FIGURE_1, entry="slave",
                            analysis_config=AnalysisConfig(entry="other"))


class TestCostModel:
    def test_single_socket_for_one_thread(self):
        cm = CostModel()
        assert cm.sockets_used(1) == 1
        assert cm.sockets_used(2) == 2
        assert cm.sockets_used(32) == 4  # 4 sockets x 8 cores

    def test_numa_multiplier(self):
        cm = CostModel()
        assert cm.memory_cost(1) == cm.mem_local
        assert cm.memory_cost(2) == cm.mem_local * cm.numa_factor
        assert cm.memory_cost(32) == cm.memory_cost(2)  # capped at remote

    def test_send_cost_tracks_memory(self):
        cm = CostModel()
        assert cm.send_cost(2) > cm.send_cost(1)
        assert cm.send_cost(1) == cm.send_fixed + cm.send_mem_writes * cm.mem_local

    def test_barrier_cost_grows_linearly(self):
        cm = CostModel()
        assert (cm.barrier_cost(32) - cm.barrier_cost(16)
                == pytest.approx(16 * cm.barrier_per_thread))

    def test_binop_costs(self):
        cm = CostModel()
        assert cm.binop_cost("add", is_float=False) == cm.alu
        assert cm.binop_cost("add", is_float=True) == cm.fp
        assert cm.binop_cost("mul", is_float=False) == cm.mul
        assert cm.binop_cost("div", is_float=False) == cm.div
        assert cm.binop_cost("mod", is_float=False) == cm.div


class TestOutputSignature:
    def test_signature_structure(self, program):
        result = program.run_protected(2, setup=figure1_setup(2))
        status, streams, arrays = result.output_signature(("result",))
        assert status == "ok"
        assert len(streams) == 2
        assert arrays[0][0] == "result"

    def test_signature_differs_on_output_change(self, program):
        a = program.run_protected(2, setup=figure1_setup(2))
        def other_setup(mem):
            figure1_setup(2)(mem)
            mem.set_array("gp", [40] * 64)
        b = program.run_protected(2, setup=other_setup)
        assert (a.output_signature(("result",))
                != b.output_signature(("result",)))
