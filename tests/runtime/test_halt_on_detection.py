"""Tests for halt_on_detection: the paper's 'detects the deviation and
stops the program' behaviour."""

from repro.faults import FaultSpec, FaultType, InjectingHook
from repro.runtime import ParallelProgram, RunConfig
from tests.conftest import FIGURE_1, figure1_setup


def test_detection_halts_the_program():
    program = ParallelProgram(FIGURE_1, "fig1.halt")
    hook = InjectingHook(FaultSpec(FaultType.BRANCH_FLIP, 2, 10))
    result = program.run(
        RunConfig(nthreads=4, halt_on_detection=True),
        setup=figure1_setup(4), fault_hook=hook)
    assert result.status == "halted"
    assert result.detected
    # the program did not run to completion
    golden = program.run(RunConfig(nthreads=4), setup=figure1_setup(4))
    assert result.steps < golden.steps


def test_clean_run_is_not_halted():
    program = ParallelProgram(FIGURE_1, "fig1.halt2")
    result = program.run(
        RunConfig(nthreads=4, halt_on_detection=True),
        setup=figure1_setup(4))
    assert result.status == "ok"
    assert not result.detected
