"""Tests for the SPMD interpreter: semantics, scheduling, sync, crashes."""

import pytest

from repro.frontend import compile_source
from repro.runtime import CostModel, Machine

PRELUDE = """
global int n = 8;
global int counter;
global int out[64];
global lock l;
global barrier b;
"""


def run(body: str, nthreads: int = 1, extra: str = "", seed: int = 0,
        max_steps: int = 500_000, prelude: str = PRELUDE, verify: bool = True):
    module = compile_source(prelude + extra + "\nfunc slave() { %s }" % body,
                            verify=verify)
    machine = Machine(module, nthreads, entry="slave", seed=seed,
                      max_steps=max_steps)
    return machine.run()


class TestSingleThreadSemantics:
    def test_wrapping_arithmetic(self):
        result = run("local int big = 1 << 62; output(big + big + big + big);")
        assert result.outputs[0] == [0]

    def test_division_by_zero_crashes(self):
        result = run("local int z = 0; output(1 / z);")
        assert result.status == "crash"
        assert "zero" in result.failure_message

    def test_out_of_bounds_crashes(self):
        result = run("out[100] = 1;")
        assert result.status == "crash"
        assert "out-of-bounds" in result.failure_message

    def test_negative_index_crashes(self):
        result = run("local int i = 0 - 1; output(out[i]);")
        assert result.status == "crash"

    def test_infinite_loop_hangs(self):
        result = run("while (true) { counter = counter + 1; }",
                     max_steps=10_000)
        assert result.status == "hang"

    def test_float_arithmetic(self):
        result = run("output(float(3) / 2.0); output(int(7.9));")
        assert result.outputs[0] == [1.5, 7]

    def test_stack_overflow_crashes(self):
        extra = "func rec(int n2) : int { return rec(n2 + 1); }"
        result = run("output(rec(0));", extra=extra)
        assert result.status == "crash"
        assert "stack" in result.failure_message


class TestFunctionPointers:
    EXTRA = """
    global int fp;
    func twice(int x) : int { return x * 2; }
    """

    def test_indirect_call(self):
        result = run("fp = &twice; output(callptr(fp, 21));", extra=self.EXTRA)
        assert result.outputs[0] == [42]

    def test_wild_pointer_crashes(self):
        result = run("fp = 999; output(callptr(fp, 21));", extra=self.EXTRA)
        assert result.status == "crash"
        assert "indirect" in result.failure_message

    def test_arity_mismatch_crashes(self):
        result = run("fp = &twice; output(callptr(fp, 1, 2));", extra=self.EXTRA)
        assert result.status == "crash"


class TestMultiThread:
    def test_all_threads_run(self):
        result = run("out[tid()] = tid() + 1;", nthreads=4)
        assert result.status == "ok"
        assert result.memory.get_array("out")[:4] == [1, 2, 3, 4]

    def test_lock_serializes_counter(self):
        body = """
        local int i;
        for (i = 0; i < 10; i = i + 1) {
          lock(l);
          counter = counter + 1;
          unlock(l);
        }
        """
        result = run(body, nthreads=8)
        assert result.status == "ok"
        assert result.memory.get_scalar("counter") == 80

    def test_tid_counter_assigns_unique_ids(self):
        body = """
        local int procid;
        lock(l);
        procid = counter;
        counter = counter + 1;
        unlock(l);
        out[procid] = 1;
        """
        result = run(body, nthreads=8)
        assert result.memory.get_array("out")[:8] == [1] * 8

    def test_unlock_without_lock_crashes(self):
        # The verifier statically rejects this protocol; compile
        # unverified to exercise the interpreter's own runtime defense.
        result = run("unlock(l);", nthreads=2, verify=False)
        assert result.status == "crash"

    def test_barrier_synchronizes(self):
        body = """
        local int t = tid();
        out[t] = t + 1;
        barrier(b);
        local int s = 0;
        local int i;
        for (i = 0; i < 4; i = i + 1) { s = s + out[i]; }
        out[t + 8] = s;
        """
        result = run(body, nthreads=4)
        # every thread sees all pre-barrier writes
        assert result.memory.get_array("out")[8:12] == [10] * 4

    def test_missing_barrier_participant_deadlocks(self):
        body = "if (tid() > 0) { barrier(b); }"
        result = run(body, nthreads=4)
        assert result.status in ("deadlock", "hang")

    def test_determinism_same_seed(self):
        body = """
        lock(l); counter = counter + 1; out[tid()] = counter; unlock(l);
        """
        r1 = run(body, nthreads=4, seed=9)
        r2 = run(body, nthreads=4, seed=9)
        assert r1.memory.get_array("out") == r2.memory.get_array("out")
        assert r1.parallel_time == r2.parallel_time

    def test_different_seeds_may_reorder_lock_winners(self):
        body = """
        lock(l); counter = counter + 1; out[tid()] = counter; unlock(l);
        """
        orders = {tuple(run(body, nthreads=4, seed=s).memory.get_array("out")[:4])
                  for s in range(12)}
        assert len(orders) > 1  # the schedule jitter explores interleavings


class TestTiming:
    def test_cycles_accumulate(self):
        result = run("local int i; for (i = 0; i < 50; i = i + 1) { counter = i; }")
        assert result.parallel_time > 0
        assert result.cycles[0] == result.parallel_time

    def test_barrier_aligns_clocks(self):
        body = """
        local int i;
        if (tid() == 0) {
          for (i = 0; i < 200; i = i + 1) { counter = i; }
        }
        barrier(b);
        """
        result = run(body, nthreads=2)
        assert result.status == "ok"
        assert abs(result.cycles[0] - result.cycles[1]) < 1e-6

    def test_numa_costmodel_applied(self):
        slow = CostModel(mem_local=50.0)
        module = compile_source(PRELUDE + "\nfunc slave() { counter = n; }")
        fast_run = Machine(module, 1, entry="slave").run()
        slow_run = Machine(module, 1, entry="slave", cost_model=slow).run()
        assert slow_run.parallel_time > fast_run.parallel_time

    def test_sync_census(self):
        body = "lock(l); unlock(l); barrier(b);"
        result = run(body, nthreads=4)
        assert result.lock_acquisitions == 4
        assert result.barrier_episodes == 1

    def test_branch_counts_tracked(self):
        result = run("local int i; for (i = 0; i < 5; i = i + 1) { counter = i; }")
        assert result.branch_counts[0] == 6  # 5 taken + 1 exit
