"""Tests for simulated shared memory and synchronization objects."""

import pytest

from repro.errors import GuestCrash, SimulationError
from repro.frontend import compile_source
from repro.runtime import SharedMemory, SimBarrier, SimMutex


def make_memory():
    module = compile_source("""
    global int x = 7;
    global float y = 1.5;
    global int a[4];
    global float fa[2];
    global lock l;
    """)
    return SharedMemory(module)


class TestSharedMemory:
    def test_initialization_from_module(self):
        memory = make_memory()
        assert memory.get_scalar("x") == 7
        assert memory.get_scalar("y") == 1.5
        assert memory.get_array("a") == [0, 0, 0, 0]
        assert "l" not in memory.scalars  # sync objects are not memory

    def test_guest_scalar_round_trip(self):
        memory = make_memory()
        memory.write_scalar("x", 42)
        assert memory.read_scalar("x") == 42

    def test_guest_unknown_global_crashes(self):
        memory = make_memory()
        with pytest.raises(GuestCrash):
            memory.read_scalar("nope")
        with pytest.raises(GuestCrash):
            memory.write_scalar("nope", 1)

    def test_bounds_checking(self):
        memory = make_memory()
        memory.write_elem("a", 3, 9)
        assert memory.read_elem("a", 3) == 9
        for bad in (-1, 4, 1000):
            with pytest.raises(GuestCrash):
                memory.read_elem("a", bad)
            with pytest.raises(GuestCrash):
                memory.write_elem("a", bad, 0)

    def test_host_set_array_coerces(self):
        memory = make_memory()
        memory.set_array("fa", [1, 2])
        assert memory.get_array("fa") == [1.0, 2.0]
        memory.set_array("a", [1.9, 2])
        assert memory.get_array("a")[0] == 1

    def test_host_set_too_long_rejected(self):
        memory = make_memory()
        with pytest.raises(SimulationError):
            memory.set_array("a", range(5))

    def test_host_partial_fill(self):
        memory = make_memory()
        memory.set_array("a", [5, 6])
        assert memory.get_array("a") == [5, 6, 0, 0]

    def test_snapshot(self):
        memory = make_memory()
        snap = memory.snapshot(["x", "a"])
        assert snap == {"x": [7], "a": [0, 0, 0, 0]}
        with pytest.raises(SimulationError):
            memory.snapshot(["missing"])

    def test_access_counters(self):
        memory = make_memory()
        memory.read_scalar("x")
        memory.write_elem("a", 0, 1)
        assert memory.loads == 1 and memory.stores == 1


class TestSimMutex:
    def test_uncontended_acquire(self):
        m = SimMutex("l")
        assert m.try_acquire(0)
        assert m.owner == 0
        assert m.acquisitions == 1

    def test_contention_queues_fifo(self):
        m = SimMutex("l")
        m.try_acquire(0)
        assert not m.try_acquire(1)
        assert not m.try_acquire(2)
        assert m.waiters == [1, 2]
        assert m.contentions == 2
        woken = m.release(0, now=100.0)
        assert woken == 1 and m.owner == 1
        assert m.last_release == 100.0

    def test_release_by_non_owner_refused(self):
        m = SimMutex("l")
        m.try_acquire(0)
        assert m.release(1, now=0.0) is None
        assert m.owner == 0

    def test_duplicate_wait_not_queued_twice(self):
        m = SimMutex("l")
        m.try_acquire(0)
        m.try_acquire(1)
        m.try_acquire(1)
        assert m.waiters == [1]


class TestSimBarrier:
    def test_episode(self):
        b = SimBarrier("b", expected=3)
        assert not b.arrive(0, 10.0)
        assert not b.arrive(1, 30.0)
        assert b.arrive(2, 20.0)
        assert b.release() == 30.0  # latest arrival clock
        assert b.generation == 1
        assert b.episodes == 1
        assert b.arrived == {}

    def test_multiple_generations(self):
        b = SimBarrier("b", expected=2)
        for generation in range(3):
            b.arrive(0, 1.0)
            assert b.arrive(1, 2.0)
            b.release()
        assert b.generation == 3
