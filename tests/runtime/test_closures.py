"""Closure backend contract: golden-trace identity with the interpreter
on every observable channel — error-free runs, optimized runs, and
fault-injected runs — plus the compiled-artifact caches."""

from __future__ import annotations

import pytest

from repro.faults import FaultSpec, FaultType, InjectingHook
from repro.runtime import ParallelProgram, RunConfig, get_compiled
from repro.runtime.closures import _COMPILE_CACHE
from repro.splash2 import kernel

from tests.conftest import FIGURE_1, figure1_setup
from tests.opt.helpers import run_signature

FAST_KERNELS = ("radix", "fft", "water_nsquared")
SLOW_KERNELS = ("fmm", "ocean_contig", "ocean_noncontig", "raytrace")


@pytest.fixture(scope="module")
def figure1_pair():
    return (ParallelProgram(FIGURE_1, "figure1"),
            ParallelProgram(FIGURE_1, "figure1", backend="closure"))


def test_figure1_identity_across_backends(figure1_pair):
    interp, closure = figure1_pair
    for seed in (0, 1, 7):
        for nthreads in (1, 4):
            setup = figure1_setup(nthreads)
            assert (run_signature(closure.run_protected(
                        nthreads, seed=seed, setup=setup))
                    == run_signature(interp.run_protected(
                        nthreads, seed=seed, setup=setup)))
            assert (run_signature(closure.run_baseline(
                        nthreads, seed=seed, setup=setup))
                    == run_signature(interp.run_baseline(
                        nthreads, seed=seed, setup=setup)))


def test_figure1_closure_o2_matches_interpreter_o0(figure1_pair):
    interp, _ = figure1_pair
    optimized = ParallelProgram(FIGURE_1, "figure1", opt_level=2,
                                backend="closure")
    for seed in (0, 5):
        assert (run_signature(optimized.run_protected(
                    4, seed=seed, setup=figure1_setup(4)))
                == run_signature(interp.run_protected(
                    4, seed=seed, setup=figure1_setup(4))))


def _assert_kernel_identity(name):
    spec = kernel(name)
    setup = spec.setup(4)
    interp = ParallelProgram(spec.source, spec.name, entry=spec.entry)
    reference = run_signature(interp.run_protected(4, seed=3, setup=setup))
    closure = ParallelProgram(spec.source, spec.name, entry=spec.entry,
                              backend="closure")
    assert run_signature(closure.run_protected(
        4, seed=3, setup=setup)) == reference
    optimized = ParallelProgram(spec.source, spec.name, entry=spec.entry,
                                opt_level=2, backend="closure")
    assert run_signature(optimized.run_protected(
        4, seed=3, setup=setup)) == reference


@pytest.mark.parametrize("name", FAST_KERNELS)
def test_kernel_identity_across_backends(name):
    _assert_kernel_identity(name)


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW_KERNELS)
def test_kernel_identity_across_backends_slow(name):
    _assert_kernel_identity(name)


@pytest.mark.parametrize("fault_type",
                         [FaultType.BRANCH_FLIP, FaultType.BRANCH_CONDITION])
def test_injected_runs_identical(figure1_pair, fault_type):
    interp, closure = figure1_pair
    for tid in (0, 2):
        for branch_index in (1, 8):
            outcomes = {}
            for label, program in (("interp", interp), ("closure", closure)):
                hook = InjectingHook(FaultSpec(fault_type, tid, branch_index))
                result = program.run_protected(4, seed=0,
                                               setup=figure1_setup(4),
                                               fault_hook=hook)
                outcomes[label] = (run_signature(result), hook.activated,
                                   hook.flipped_branch, result.detected)
            assert outcomes["interp"] == outcomes["closure"], (
                fault_type, tid, branch_index)


def test_run_config_backend_overrides_program_default(figure1_pair):
    interp, _ = figure1_pair
    reference = run_signature(interp.run_protected(4, seed=0,
                                                   setup=figure1_setup(4)))
    overridden = interp.run(
        RunConfig(nthreads=4, seed=0, backend="closure"),
        setup=figure1_setup(4))
    assert run_signature(overridden) == reference


def test_backend_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "closure")
    program = ParallelProgram(FIGURE_1, "figure1")
    assert program.backend == "closure"
    monkeypatch.setenv("REPRO_BACKEND", "llvm")
    with pytest.raises(ValueError):
        ParallelProgram(FIGURE_1, "figure1")


def test_get_compiled_memoizes_per_module(figure1_pair):
    _, closure = figure1_pair
    module = closure.protected
    assert get_compiled(module, nthreads=4) is get_compiled(module,
                                                            nthreads=4)
    assert get_compiled(module, nthreads=4) is not get_compiled(module,
                                                                nthreads=2)


def test_closure_bundle_store_round_trip(tmp_path):
    """Cold run misses the closure cache; a fresh process-equivalent
    (in-process cache wiped) recompile hits it and stays
    trace-identical."""
    from repro.store import ArtifactStore
    from repro.store.runtime import set_default_store
    store = ArtifactStore(str(tmp_path / "store"))
    set_default_store(store)
    try:
        program = ParallelProgram(FIGURE_1, "figure1", backend="closure")
        cold = program.run_protected(4, seed=3, setup=figure1_setup(4))
        assert store.counters.get("store.closure.miss") == 1
        assert "store.closure.hit" not in store.counters

        _COMPILE_CACHE.clear()
        rebuilt = ParallelProgram(FIGURE_1, "figure1", backend="closure")
        warm = rebuilt.run_protected(4, seed=3, setup=figure1_setup(4))
        assert store.counters.get("store.closure.hit") == 1
        assert run_signature(warm) == run_signature(cold)

        interp = rebuilt.run_protected(4, seed=3, setup=figure1_setup(4),
                                       backend="interpreter")
        assert run_signature(interp) == run_signature(cold)
    finally:
        set_default_store(None)


def test_corrupt_closure_bundle_is_rejected_not_trusted(tmp_path):
    """A bundle whose unit layout disagrees with the fresh plan must be
    discarded (per-function cold recompile), never executed."""
    from repro.store import ArtifactStore
    from repro.store.runtime import set_default_store
    store = ArtifactStore(str(tmp_path / "store"))
    set_default_store(store)
    try:
        program = ParallelProgram(FIGURE_1, "figure1", backend="closure")
        cold = program.run_protected(4, seed=3, setup=figure1_setup(4))
        # Corrupt every stored bundle: garble the generated sources.
        for entry in store.entries():
            if entry.kind != "closure":
                continue
            bundle = store.load(entry.key, "closure")
            for data in bundle["functions"].values():
                data["source"] = "def nonsense(:\n"
            store.put(entry.key, "closure", bundle)
        _COMPILE_CACHE.clear()
        rebuilt = ParallelProgram(FIGURE_1, "figure1", backend="closure")
        warm = rebuilt.run_protected(4, seed=3, setup=figure1_setup(4))
        assert run_signature(warm) == run_signature(cold)
    finally:
        set_default_store(None)
