"""Corner-path tests: monitor backpressure (full queues block producers,
who must resume correctly) and floating-point guest programs."""

import pytest

from repro.analysis import AnalysisConfig
from repro.instrument import InstrumentConfig
from repro.monitor import MODE_FULL
from repro.runtime import ParallelProgram, RunConfig

BRANCH_HEAVY = """
global int nprocs;
global int n = 40;
global int out[32];
global barrier bar;

func slave() {
  local int t = tid();
  local int acc = 0;
  local int i;
  for (i = 0; i < n; i = i + 1) {
    if (i %% 2 == 0) { acc = acc + 1; }
    if (i %% 3 == 0) { acc = acc + 2; }
  }
  out[t] = acc;
  barrier(bar);
}
""".replace("%%", "%")


class TestBackpressure:
    def test_tiny_queues_still_complete_and_check(self):
        program = ParallelProgram(
            BRANCH_HEAVY, "bp",
            instrument_config=InstrumentConfig(queue_capacity=3,
                                               monitor_batch=2))
        result = program.run(
            RunConfig(nthreads=4, monitor_mode=MODE_FULL, quantum=64),
            setup=lambda m: m.set_scalar("nprocs", 4))
        assert result.status == "ok", result.failure_message
        assert not result.detected
        assert result.monitor.queue_pressure() > 0  # stalls really happened
        assert result.monitor.stats.instances_checked > 0

    def test_backpressure_result_equals_roomy_result(self):
        tiny = ParallelProgram(
            BRANCH_HEAVY, "bp.tiny",
            instrument_config=InstrumentConfig(queue_capacity=3,
                                               monitor_batch=2))
        roomy = ParallelProgram(BRANCH_HEAVY, "bp.roomy")
        setup = lambda m: m.set_scalar("nprocs", 4)  # noqa: E731
        a = tiny.run(RunConfig(nthreads=4), setup=setup)
        b = roomy.run(RunConfig(nthreads=4), setup=setup)
        assert a.memory.get_array("out") == b.memory.get_array("out")

    def test_stalls_cost_cycles(self):
        tiny = ParallelProgram(
            BRANCH_HEAVY, "bp.tiny2",
            instrument_config=InstrumentConfig(queue_capacity=3,
                                               monitor_batch=2))
        roomy = ParallelProgram(BRANCH_HEAVY, "bp.roomy2")
        setup = lambda m: m.set_scalar("nprocs", 4)  # noqa: E731
        slow = tiny.run(RunConfig(nthreads=4), setup=setup)
        fast = roomy.run(RunConfig(nthreads=4), setup=setup)
        assert slow.parallel_time > fast.parallel_time


FLOAT_KERNEL = """
global int nprocs;
global float scale = 1.5;
global float fdata[16];
global float fout[16];
global barrier bar;

func smooth(float a, float b) : float {
  if (a > b) { return (a + b) / 2.0; }
  return b * scale;
}

func slave() {
  local int t = tid();
  local int per = 16 / nprocs;
  local int i;
  for (i = t * per; i < t * per + per; i = i + 1) {
    local float v = fdata[i];
    if (v > 2.0) { v = v - 1.0; }
    fout[i] = smooth(v, scale);
  }
  barrier(bar);
}
"""


class TestFloatKernel:
    @pytest.fixture(scope="class")
    def program(self):
        return ParallelProgram(FLOAT_KERNEL, "floats")

    def setup_mem(self, nthreads):
        def apply(memory):
            memory.set_scalar("nprocs", nthreads)
            memory.set_array("fdata", [0.5 * i for i in range(16)])
        return apply

    def test_runs_clean(self, program):
        result = program.run_protected(4, setup=self.setup_mem(4))
        assert result.status == "ok"
        assert not result.detected
        out = result.memory.get_array("fout")
        assert all(isinstance(v, float) for v in out)

    def test_float_conditions_classified_and_checked(self, program):
        kinds = {info.check_kind
                 for info in program.metadata.branches.values()}
        assert "partial" in kinds or "shared" in kinds

    def test_division_by_zero_gives_inf_not_crash(self):
        source = """
        global float z;
        func slave() { output(1.0 / z); output(0.0 - 1.0 / z); }
        """
        program = ParallelProgram(source, "fdiv")
        result = program.run_protected(1)
        assert result.status == "ok"
        assert result.outputs[0][0] == float("inf")
        assert result.outputs[0][1] == float("-inf")


class TestEnvKnobs:
    def test_coverage_env_parsing(self, monkeypatch):
        from repro.experiments.coverage import env_injections, env_threads
        monkeypatch.setenv("REPRO_FAULTS", "123")
        monkeypatch.setenv("REPRO_THREADS", "2, 8")
        assert env_injections() == 123
        assert env_threads() == (2, 8)
        monkeypatch.delenv("REPRO_FAULTS")
        monkeypatch.delenv("REPRO_THREADS")
        assert env_injections(55) == 55
        assert env_threads() == (4, 32)
