"""Tests for bit-accurate guest-value helpers, with property tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import GuestCrash
from repro.runtime import (
    INT_MAX,
    INT_MIN,
    flip_float_bit,
    flip_int_bit,
    flip_value_bit,
    float_to_int,
    int_div,
    int_mod,
    wrap_int,
)

int64s = st.integers(min_value=INT_MIN, max_value=INT_MAX)
bits = st.integers(min_value=0, max_value=63)


class TestWrap:
    def test_identity_in_range(self):
        for v in (0, 1, -1, INT_MAX, INT_MIN):
            assert wrap_int(v) == v

    def test_overflow_wraps(self):
        assert wrap_int(INT_MAX + 1) == INT_MIN
        assert wrap_int(INT_MIN - 1) == INT_MAX
        assert wrap_int(2 ** 64) == 0

    @given(st.integers())
    def test_always_in_range(self, v):
        assert INT_MIN <= wrap_int(v) <= INT_MAX

    @given(int64s, int64s)
    def test_additive_homomorphism(self, a, b):
        assert wrap_int(a + b) == wrap_int(wrap_int(a) + wrap_int(b))


class TestCStyleDivMod:
    def test_truncation_toward_zero(self):
        assert int_div(7, 2) == 3
        assert int_div(-7, 2) == -3
        assert int_div(7, -2) == -3
        assert int_div(-7, -2) == 3

    def test_mod_sign_follows_dividend(self):
        assert int_mod(7, 3) == 1
        assert int_mod(-7, 3) == -1
        assert int_mod(7, -3) == 1

    def test_division_by_zero_crashes(self):
        with pytest.raises(GuestCrash):
            int_div(1, 0)
        with pytest.raises(GuestCrash):
            int_mod(1, 0)

    @given(int64s, int64s.filter(lambda v: v != 0))
    def test_div_mod_identity(self, a, b):
        q, r = int_div(a, b), int_mod(a, b)
        assert wrap_int(q * b + r) == a
        if a != INT_MIN or b != -1:  # the lone overflow case
            assert abs(r) < abs(b)


class TestFloatToInt:
    def test_truncates(self):
        assert float_to_int(3.9) == 3
        assert float_to_int(-3.9) == -3

    def test_nan_inf_crash(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(GuestCrash):
                float_to_int(bad)

    def test_overflow_crashes(self):
        with pytest.raises(GuestCrash):
            float_to_int(1e300)


class TestBitFlips:
    @given(int64s, bits)
    def test_int_flip_is_involution(self, value, bit):
        assert flip_int_bit(flip_int_bit(value, bit), bit) == value

    @given(int64s, bits)
    def test_int_flip_changes_value(self, value, bit):
        assert flip_int_bit(value, bit) != value

    def test_sign_bit(self):
        assert flip_int_bit(0, 63) == INT_MIN
        assert flip_int_bit(1, 0) == 0

    def test_bit_range_validated(self):
        with pytest.raises(ValueError):
            flip_int_bit(0, 64)
        with pytest.raises(ValueError):
            flip_float_bit(0.0, -1)

    @given(st.floats(allow_nan=False, allow_infinity=False), bits)
    def test_float_flip_is_involution(self, value, bit):
        once = flip_float_bit(value, bit)
        twice = flip_float_bit(once, bit)
        assert twice == value or (math.isnan(twice) and math.isnan(value))

    def test_float_exponent_bit_scales(self):
        flipped = flip_float_bit(1.0, 62)
        assert flipped != 1.0 and abs(flipped) > 1.0

    def test_bool_flip(self):
        assert flip_value_bit(True, 0) is False
        assert flip_value_bit(False, 0) is True
        assert flip_value_bit(True, 5) is True  # other bits don't exist

    @given(int64s, bits)
    def test_flip_value_dispatches_ints(self, value, bit):
        assert flip_value_bit(value, bit) == flip_int_bit(value, bit)
