"""Tests for the experiment harnesses (smoke-level where expensive).

The expensive figures (6-9) are exercised with reduced parameters — the
full-size regeneration lives in benchmarks/.
"""

import pytest

from repro.experiments import (
    duplication,
    false_positives,
    fig6,
    fig7,
    fig8,
    table3,
    table4,
    table5,
)
from repro.experiments.coverage import compute_coverage
from repro.experiments.runner import EXPERIMENTS, main as runner_main
from repro.faults import FaultType


class TestTable3:
    def test_matches_paper(self):
        result = table3.compute()
        assert result.matches_paper
        assert result.iterations < 10
        assert "MATCH" in table3.render(result)


class TestTable4:
    def test_rows_and_render(self):
        rows = table4.compute()
        assert len(rows) == 7
        for row in rows:
            assert row.ours.parallel_branches <= row.ours.total_branches
            assert row.ours.parallel_loc <= row.ours.total_loc
        text = table4.render(rows)
        assert "raytrace" in text and "paper" in text


class TestTable5:
    def test_census_shape(self):
        rows = table5.compute()
        assert len(rows) == 7
        by_name = {row.ours.name: row.ours for row in rows}
        # headline claim: similar fraction spans roughly half to nearly all
        fractions = [s.similar_fraction for s in by_name.values()]
        assert min(fractions) < 0.75 < max(fractions)
        text = table5.render(rows)
        assert "similar" in text


@pytest.mark.slow
class TestFig6And7:
    def test_fig6_small(self):
        result = fig6.compute(thread_counts=(2, 8))
        assert set(result.overheads) == set(
            name for name in result.overheads)
        assert len(result.overheads) == 7
        for values in result.overheads.values():
            assert all(v > 1.0 for v in values)
        assert "Figure 6" in fig6.render(result)

    def test_fig7_shape(self):
        result = fig7.compute(thread_counts=(1, 2, 8, 32))
        assert result.has_numa_bump
        assert result.geomean[-1] < result.geomean[1]
        assert result.geomean[-1] < 1.5  # near the paper's 1.16
        assert "Figure 7" in fig7.render(result)


@pytest.mark.slow
class TestCoverage:
    def test_single_cell(self):
        result = compute_coverage(FaultType.BRANCH_FLIP,
                                  thread_counts=(4,), injections=8, seed=3)
        assert len(result.stats) == 7
        for stats in result.stats.values():
            assert stats.injections == 8
        average = result.average("coverage_protected", 4)
        assert 0.0 <= average <= 1.0
        text = fig8.render(result)
        assert "Figure 8" in text


@pytest.mark.slow
class TestFalsePositives:
    def test_small_trial_is_clean(self):
        result = false_positives.compute(runs=3, nthreads=4)
        assert result.total == 0
        assert "TOTAL" in false_positives.render(result)


class TestDuplication:
    def test_model_shapes(self):
        # pure model check, no simulation needed
        small = duplication.modeled_duplication_overhead(
            10_000.0, locks=4, barriers=3, nthreads=4)
        large = duplication.modeled_duplication_overhead(
            10_000.0, locks=4, barriers=3, nthreads=32)
        assert large > small          # duplication does not scale
        assert small > 1.0

    def test_compare_at_two_counts(self):
        result = duplication.compute(thread_counts=(4,))
        bw_avg, dup_avg = result.averages(0)
        assert bw_avg > 1.0 and dup_avg > 1.0
        assert "duplication" in duplication.render(result)


class TestRunner:
    def test_list(self, capsys):
        assert runner_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_rejected(self, capsys):
        assert runner_main(["nope"]) == 2

    def test_runs_cheap_experiment(self, capsys):
        assert runner_main(["table3"]) == 0
        assert "Table III" in capsys.readouterr().out
