"""Tests for the Lamport SPSC queue, including a property test that
model-checks FIFO behaviour under arbitrary push/pop interleavings."""

import pytest
from hypothesis import given, strategies as st

from repro.monitor import SpscQueue


class TestBasics:
    def test_empty_initially(self):
        q = SpscQueue(4)
        assert q.is_empty and not q.is_full
        assert len(q) == 0
        assert q.try_pop() is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpscQueue(0)

    def test_push_pop_order(self):
        q = SpscQueue(8)
        for i in range(5):
            assert q.try_push(i)
        assert [q.try_pop() for _ in range(5)] == [0, 1, 2, 3, 4]
        assert q.is_empty

    def test_full_rejects_and_counts(self):
        q = SpscQueue(2)
        assert q.try_push("a") and q.try_push("b")
        assert q.is_full
        assert not q.try_push("c")
        assert q.full_events == 1
        assert len(q) == 2

    def test_capacity_is_usable_slots(self):
        q = SpscQueue(3)
        assert q.capacity == 3
        assert all(q.try_push(i) for i in range(3))
        assert not q.try_push(99)

    def test_wraparound(self):
        q = SpscQueue(3)
        for round_ in range(10):
            assert q.try_push(round_)
            assert q.try_pop() == round_

    def test_drain_limit(self):
        q = SpscQueue(8)
        for i in range(6):
            q.try_push(i)
        assert q.drain(4) == [0, 1, 2, 3]
        assert q.drain(10) == [4, 5]

    def test_slots_cleared_on_pop(self):
        q = SpscQueue(2)
        q.try_push("payload")
        q.try_pop()
        assert all(slot is None for slot in q._buffer)


class TestFifoProperty:
    @given(st.lists(
        st.one_of(st.tuples(st.just("push"), st.integers()),
                  st.tuples(st.just("pop"), st.just(0))),
        max_size=200),
        st.integers(min_value=1, max_value=7))
    def test_behaves_like_bounded_deque(self, ops, capacity):
        """Differential test against a plain list model."""
        q = SpscQueue(capacity)
        model = []
        for op, value in ops:
            if op == "push":
                ok = q.try_push(value)
                assert ok == (len(model) < capacity)
                if ok:
                    model.append(value)
            else:
                got = q.try_pop()
                expected = model.pop(0) if model else None
                assert got == expected
            assert len(q) == len(model)
            assert q.is_empty == (not model)
            assert q.is_full == (len(model) == capacity)
