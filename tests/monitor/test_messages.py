"""Tests for monitor message types (hot-path classes)."""

from repro.analysis import Category
from repro.instrument.config import CheckedBranchInfo
from repro.monitor import ConditionMessage, OutcomeMessage


def info():
    return CheckedBranchInfo(static_id=3, function_name="f", block_name="b",
                             check_kind="partial", category=Category.PARTIAL)


class TestMessages:
    def test_condition_message_fields(self):
        msg = ConditionMessage(info(), 2, ((1,), (0,)), values=(5, -1))
        assert not msg.is_outcome
        assert msg.thread_id == 2
        assert msg.values == (5, -1)
        assert "t2" in repr(msg)

    def test_outcome_message_fields(self):
        msg = OutcomeMessage(info(), 1, ((), ()), taken=True)
        assert msg.is_outcome
        assert msg.taken is True
        assert "taken=True" in repr(msg)

    def test_slots_prevent_accidental_attributes(self):
        msg = OutcomeMessage(info(), 0, ((), ()), taken=False)
        try:
            msg.extra = 1
        except AttributeError:
            return
        raise AssertionError("__slots__ should reject new attributes")

    def test_dispatch_flag_is_class_level(self):
        assert ConditionMessage.is_outcome is False
        assert OutcomeMessage.is_outcome is True
