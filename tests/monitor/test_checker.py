"""Tests for the category-specific runtime checks."""

import pytest

from repro.analysis import Category
from repro.instrument.config import CheckedBranchInfo
from repro.monitor import InstanceEntry, check_instance


def info(kind: str, **kwargs) -> CheckedBranchInfo:
    defaults = dict(static_id=1, function_name="f", block_name="b",
                    check_kind=kind, category=Category.SHARED)
    defaults.update(kwargs)
    return CheckedBranchInfo(**defaults)


def entry(kind: str, reports, **kwargs) -> InstanceEntry:
    """reports: list of (tid, values_tuple_or_None, taken)."""
    e = InstanceEntry(info=info(kind, **kwargs))
    for tid, values, taken in reports:
        if values is not None:
            e.values[tid] = values
        e.outcomes[tid] = taken
    return e


class TestShared:
    def test_agreement_passes(self):
        e = entry("shared", [(0, (5,), True), (1, (5,), True), (2, (5,), True)])
        assert check_instance(e) is None

    def test_outcome_divergence_detected(self):
        e = entry("shared", [(0, (5,), True), (1, (5,), False)])
        violation = check_instance(e)
        assert violation is not None and violation.rule == "shared-outcome"

    def test_value_divergence_detected(self):
        e = entry("shared", [(0, (5,), True), (1, (6,), True)])
        violation = check_instance(e)
        assert violation.rule == "shared-values"

    def test_single_reporter_vacuous(self):
        e = entry("shared", [(0, (5,), True)])
        assert check_instance(e) is None

    def test_no_reporters_vacuous(self):
        assert check_instance(entry("shared", [])) is None


class TestUniform:
    def test_same_outcomes_pass_despite_different_values(self):
        e = entry("uniform", [(0, None, True), (1, None, True)])
        assert check_instance(e) is None

    def test_outcome_divergence_detected(self):
        e = entry("uniform", [(0, None, True), (1, None, False), (2, None, True)])
        violation = check_instance(e)
        assert violation.rule == "uniform"
        assert 1 in violation.thread_ids or 0 in violation.thread_ids


class TestTidEq:
    def reports(self, takens):
        # basis (lhs, rhs): lhs = tid expression (varies), rhs = shared 0
        return [(tid, (tid, 0), taken) for tid, taken in enumerate(takens)]

    def test_one_taker_ok(self):
        e = entry("tid_eq", self.reports([True, False, False]),
                  eq_sense="eq", shared_operand_index=1)
        assert check_instance(e) is None

    def test_zero_takers_ok(self):
        e = entry("tid_eq", self.reports([False, False, False]),
                  eq_sense="eq", shared_operand_index=1)
        assert check_instance(e) is None

    def test_two_takers_detected(self):
        e = entry("tid_eq", self.reports([True, False, True]),
                  eq_sense="eq", shared_operand_index=1)
        violation = check_instance(e)
        assert violation.rule == "tid-eq"
        assert violation.thread_ids == (0, 2)

    def test_ne_sense_counts_fallthroughs(self):
        e = entry("tid_eq", self.reports([False, True, False]),
                  eq_sense="ne", shared_operand_index=1)
        violation = check_instance(e)
        assert violation is not None  # two threads fell through

    def test_shared_side_divergence_detected(self):
        reports = [(0, (0, 7), True), (1, (1, 8), False)]
        e = entry("tid_eq", reports, eq_sense="eq", shared_operand_index=1)
        violation = check_instance(e)
        assert violation.rule == "tid-shared-operand"


class TestTidMonotone:
    def make(self, pairs, direction="low"):
        """pairs: list of (lhs_value, taken); rhs (bound) fixed at 10."""
        reports = [(tid, (lhs, 10), taken)
                   for tid, (lhs, taken) in enumerate(pairs)]
        return entry("tid_monotone", reports, monotone_dir=direction,
                     shared_operand_index=1)

    def test_legal_prefix_passes(self):
        # lhs < 10: takers are the low values
        e = self.make([(4, True), (8, True), (12, False), (16, False)])
        assert check_instance(e) is None

    def test_block_violation_detected(self):
        # a non-taker sits between takers
        e = self.make([(4, True), (8, False), (12, True)])
        assert check_instance(e).rule == "tid-monotone"

    def test_unordered_reporting_is_sorted_by_value(self):
        # report order scrambled; values determine legality
        e = self.make([(12, False), (4, True), (8, True)])
        assert check_instance(e) is None

    def test_high_direction(self):
        e = self.make([(4, False), (8, False), (12, True)], direction="high")
        assert check_instance(e) is None
        e = self.make([(4, True), (12, False)], direction="high")
        assert check_instance(e) is not None

    def test_tie_disagreement_detected(self):
        e = self.make([(8, True), (8, False), (20, False)])
        assert check_instance(e) is not None

    def test_logical_vs_physical_tid_order(self):
        """The tid-counter can hand logical ids out of physical order; the
        check must sort by reported value, not by reporting thread id."""
        reports = [(0, (12, 10), False), (1, (4, 10), True), (2, (8, 10), True)]
        e = entry("tid_monotone", reports, monotone_dir="low",
                  shared_operand_index=1)
        assert check_instance(e) is None


class TestPartial:
    def test_groups_agree(self):
        e = entry("partial", [(0, (1,), True), (1, (-1,), False),
                              (2, (1,), True), (3, (-1,), False)])
        assert check_instance(e) is None

    def test_group_disagreement_detected(self):
        e = entry("partial", [(0, (1,), True), (1, (1,), False)])
        violation = check_instance(e)
        assert violation.rule == "partial"
        assert set(violation.thread_ids) == {0, 1}

    def test_singleton_groups_vacuous(self):
        e = entry("partial", [(0, (1,), True), (1, (2,), False)])
        assert check_instance(e) is None

    def test_missing_condition_message_skipped(self):
        e = entry("partial", [(0, (1,), True), (1, None, False)])
        assert check_instance(e) is None


class TestDispatch:
    def test_unknown_kind_rejected(self):
        e = entry("shared", [])
        object.__setattr__(e.info, "__dict__", {})  # no-op for frozen
        bad = InstanceEntry(info=info("bogus"))
        with pytest.raises(ValueError):
            check_instance(bad)

    def test_violation_str_mentions_branch(self):
        e = entry("shared", [(0, (5,), True), (1, (5,), False)])
        text = str(check_instance(e))
        assert "shared" in text and "threads" in text
