"""Tests for the hierarchical multi-monitor (paper Section VI extension)."""

import pytest

from repro.analysis import Category
from repro.instrument.config import (
    CheckedBranchInfo,
    InstrumentConfig,
    InstrumentationMetadata,
)
from repro.monitor import (
    ConditionMessage,
    HierarchicalMonitor,
    OutcomeMessage,
)
from repro.runtime import ParallelProgram, RunConfig
from tests.conftest import FIGURE_1, figure1_setup

KEY = ((), ())


def make_info(static_id=0, kind="shared"):
    return CheckedBranchInfo(static_id=static_id, function_name="f",
                             block_name="b", check_kind=kind,
                             category=Category.SHARED)


def make_monitor(nthreads=8, groups=4, capacity=64):
    metadata = InstrumentationMetadata(
        config=InstrumentConfig(queue_capacity=capacity))
    return HierarchicalMonitor(metadata, nthreads, groups=groups)


class TestStructure:
    def test_groups_partition_threads(self):
        monitor = make_monitor(nthreads=8, groups=3)
        members = [tid for group in monitor.group_members for tid in group]
        assert sorted(members) == list(range(8))
        sizes = [len(g) for g in monitor.group_members]
        assert max(sizes) - min(sizes) <= 1

    def test_groups_capped_at_threads(self):
        monitor = make_monitor(nthreads=2, groups=16)
        assert monitor.groups == 2

    def test_invalid_groups_rejected(self):
        with pytest.raises(ValueError):
            make_monitor(groups=0)


class TestSemantics:
    def test_detects_like_flat_monitor(self):
        monitor = make_monitor(nthreads=4, groups=2)
        info = make_info()
        for tid in range(4):
            taken = tid != 3  # thread 3 deviates
            monitor.try_send(tid, ConditionMessage(info, tid, KEY, (1,)))
            monitor.try_send(tid, OutcomeMessage(info, tid, KEY, taken))
        monitor.finalize()
        assert monitor.detected
        assert sum(monitor.leaf_processed) == 8

    def test_drain_bandwidth_scales_with_groups(self):
        """One invocation retires up to groups x limit messages."""
        wide = make_monitor(nthreads=8, groups=4)
        narrow = make_monitor(nthreads=8, groups=1)
        info = make_info()
        for monitor in (wide, narrow):
            for tid in range(8):
                for _ in range(4):
                    monitor.try_send(tid, OutcomeMessage(info, tid, KEY, True))
        assert wide.drain(4) == 16   # 4 leaves x 4
        assert narrow.drain(4) == 4


class TestEndToEnd:
    def test_program_runs_clean_under_hierarchy(self):
        program = ParallelProgram(FIGURE_1, "fig1.hier")
        result = program.run(
            RunConfig(nthreads=8, monitor_groups=4),
            setup=figure1_setup(8))
        assert result.status == "ok"
        assert not result.detected
        assert isinstance(result.monitor, HierarchicalMonitor)
        assert result.monitor.stats.instances_checked > 0

    def test_hierarchy_reduces_backpressure(self):
        from repro.instrument import InstrumentConfig as IC
        source = FIGURE_1
        tiny = IC(queue_capacity=3, monitor_batch=1)
        flat_prog = ParallelProgram(source, "bp.flat", instrument_config=tiny)
        hier_prog = ParallelProgram(source, "bp.hier", instrument_config=tiny)
        flat = flat_prog.run(RunConfig(nthreads=8, monitor_groups=1),
                             setup=figure1_setup(8))
        hier = hier_prog.run(RunConfig(nthreads=8, monitor_groups=4),
                             setup=figure1_setup(8))
        assert flat.status == hier.status == "ok"
        assert hier.monitor.queue_pressure() < flat.monitor.queue_pressure()
