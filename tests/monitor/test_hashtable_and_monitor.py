"""Tests for the two-level branch table and the monitor protocol."""

from repro.analysis import Category
from repro.instrument.config import (
    CheckedBranchInfo,
    InstrumentConfig,
    InstrumentationMetadata,
)
from repro.monitor import (
    BranchTable,
    ConditionMessage,
    MODE_FEED,
    MODE_FULL,
    Monitor,
    OutcomeMessage,
)


def make_info(static_id=0, kind="shared", **kwargs) -> CheckedBranchInfo:
    defaults = dict(static_id=static_id, function_name="f", block_name="b",
                    check_kind=kind, category=Category.SHARED)
    defaults.update(kwargs)
    return CheckedBranchInfo(**defaults)


KEY = ((), ())


class TestBranchTable:
    def test_reports_merge_into_one_instance(self):
        table = BranchTable()
        info = make_info()
        e1 = table.record_condition(info, KEY, 0, (5,))
        e2 = table.record_outcome(info, KEY, 0, True)
        e3 = table.record_condition(info, KEY, 1, (5,))
        assert e1 is e2 is e3
        assert e1.values == {0: (5,), 1: (5,)}
        assert e1.outcomes == {0: True}

    def test_levels_separate_instances(self):
        table = BranchTable()
        info = make_info()
        a = table.record_outcome(info, ((1,), (0,)), 0, True)
        b = table.record_outcome(info, ((2,), (0,)), 0, True)   # call path
        c = table.record_outcome(info, ((1,), (1,)), 0, True)   # loop iter
        d = table.record_outcome(make_info(static_id=9), ((1,), (0,)), 0, True)
        assert len({id(x) for x in (a, b, c, d)}) == 4

    def test_occurrence_counter_separates_repeats(self):
        """Same (call path, static id, loop iters) executed twice by the
        same thread must produce two instances, aligned by occurrence."""
        table = BranchTable()
        info = make_info()
        first_t0 = table.record_outcome(info, KEY, 0, True)
        second_t0 = table.record_outcome(info, KEY, 0, False)
        first_t1 = table.record_outcome(info, KEY, 1, True)
        second_t1 = table.record_outcome(info, KEY, 1, False)
        assert first_t0 is first_t1
        assert second_t0 is second_t1
        assert first_t0 is not second_t0

    def test_complete_for(self):
        table = BranchTable()
        info = make_info()
        entry = table.record_condition(info, KEY, 0, ())
        table.record_outcome(info, KEY, 0, True)
        assert not entry.complete_for(2)
        table.record_condition(info, KEY, 1, ())
        table.record_outcome(info, KEY, 1, True)
        assert entry.complete_for(2)

    def test_discard_checked(self):
        table = BranchTable()
        info = make_info()
        entry = table.record_outcome(info, KEY, 0, True)
        entry.checked = True
        assert len(table) == 1
        assert table.discard_checked() == 1
        assert len(table) == 0


def make_monitor(nthreads=2, mode=MODE_FULL, capacity=64) -> Monitor:
    metadata = InstrumentationMetadata(
        config=InstrumentConfig(queue_capacity=capacity))
    return Monitor(metadata, nthreads, mode=mode)


def send_pair(monitor, info, tid, values, taken, key=KEY):
    assert monitor.try_send(tid, ConditionMessage(info, tid, key, values))
    assert monitor.try_send(tid, OutcomeMessage(info, tid, key, taken))


class TestMonitor:
    def test_clean_instance_checks_quietly(self):
        monitor = make_monitor()
        info = make_info()
        send_pair(monitor, info, 0, (5,), True)
        send_pair(monitor, info, 1, (5,), True)
        monitor.drain(100)
        assert monitor.stats.instances_checked == 1
        assert not monitor.detected

    def test_violation_recorded(self):
        monitor = make_monitor()
        info = make_info()
        send_pair(monitor, info, 0, (5,), True)
        send_pair(monitor, info, 1, (5,), False)
        monitor.drain(100)
        assert monitor.detected
        assert monitor.first_violation().rule == "shared-outcome"

    def test_incomplete_instance_checked_at_finalize(self):
        monitor = make_monitor(nthreads=3)
        info = make_info()
        send_pair(monitor, info, 0, (5,), True)
        send_pair(monitor, info, 1, (5,), False)  # thread 2 never reports
        monitor.drain(100)
        assert not monitor.detected  # incomplete: not checked eagerly
        monitor.finalize()
        assert monitor.detected

    def test_round_robin_drain_interleaves(self):
        monitor = make_monitor()
        info = make_info()
        for _ in range(3):
            monitor.try_send(0, OutcomeMessage(info, 0, KEY, True))
        monitor.try_send(1, OutcomeMessage(info, 1, KEY, True))
        assert monitor.drain(2) == 2
        # one from each queue despite queue 0 having more
        assert len(monitor.queues[0]) == 2
        assert len(monitor.queues[1]) == 0

    def test_full_queue_reports_backpressure(self):
        monitor = make_monitor(capacity=2)
        info = make_info()
        assert monitor.try_send(0, OutcomeMessage(info, 0, KEY, True))
        assert monitor.try_send(0, OutcomeMessage(info, 0, KEY, True))
        assert not monitor.try_send(0, OutcomeMessage(info, 0, KEY, True))
        assert monitor.queue_pressure() == 1

    def test_feed_mode_discards_without_checking(self):
        monitor = make_monitor(mode=MODE_FEED)
        info = make_info()
        send_pair(monitor, info, 0, (5,), True)
        send_pair(monitor, info, 1, (5,), False)   # would be a violation
        monitor.drain(100)
        monitor.finalize()
        assert not monitor.detected
        assert monitor.stats.instances_checked == 0
        assert monitor.messages_received == 4

    def test_feed_mode_never_blocks_producers(self):
        monitor = make_monitor(mode=MODE_FEED, capacity=2)
        info = make_info()
        for _ in range(50):
            assert monitor.try_send(0, OutcomeMessage(info, 0, KEY, True))
