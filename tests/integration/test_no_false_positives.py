"""The load-bearing guarantee: BLOCKWATCH reports nothing on error-free
runs, across programs, thread counts, and schedules.

The paper verifies this with 100 error-free runs per program; here every
seed is a *different* legal interleaving (schedule jitter), which is a
stronger test, and a hypothesis-driven case fuzzes random seeds and
thread counts on the Figure 1 program.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import ParallelProgram
from repro.splash2 import KERNELS
from tests.conftest import FIGURE_1, figure1_setup

#: Full-suite campaign over every kernel x thread count x schedule —
#: deselect with ``-m "not slow"`` for a fast inner loop.
pytestmark = pytest.mark.slow

KERNEL_NAMES = sorted(KERNELS)


@pytest.mark.parametrize("name", KERNEL_NAMES)
@pytest.mark.parametrize("nthreads", [2, 4, 8])
def test_kernels_have_no_false_positives(name, nthreads, compiled_kernels):
    spec, prog = compiled_kernels[name]
    for seed in range(4):
        result = prog.run_protected(nthreads, seed=seed,
                                    setup=spec.setup(nthreads))
        assert result.status == "ok", (name, result.failure_message)
        assert not result.detected, (name, nthreads, seed,
                                     result.violations[:2])


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_kernels_clean_at_32_threads(name, compiled_kernels):
    spec, prog = compiled_kernels[name]
    result = prog.run_protected(32, seed=1234, setup=spec.setup(32))
    assert not result.detected, (name, result.violations[:2])


class TestFuzzedSchedules:
    @pytest.fixture(scope="class")
    def program(self):
        return ParallelProgram(FIGURE_1, "fig1")

    @given(seed=st.integers(min_value=0, max_value=10 ** 9),
           nthreads=st.sampled_from([2, 3, 4, 5, 8]))
    @settings(max_examples=25, deadline=None)
    def test_any_schedule_is_clean(self, program, seed, nthreads):
        result = program.run_protected(nthreads, seed=seed,
                                       setup=figure1_setup(nthreads))
        assert result.status == "ok"
        assert not result.detected, result.violations[:2]
