"""End-to-end pipeline tests through the public facade, plus small fault
campaigns asserting real detection capability on every kernel."""

import pytest

from repro import BlockWatch, FaultType
from repro.splash2 import KERNELS
from tests.conftest import FIGURE_1, figure1_setup

KERNEL_NAMES = sorted(KERNELS)


class TestFacade:
    @pytest.fixture(scope="class")
    def bw(self):
        return BlockWatch(FIGURE_1, name="fig1")

    def test_report_contains_all_categories(self, bw):
        text = bw.report()
        for token in ("threadID", "shared", "partial", "none", "tid_eq"):
            assert token in text

    def test_statistics(self, bw):
        stats = bw.statistics()
        assert stats.total == 4
        assert 0 < stats.similar_fraction <= 1

    def test_run_and_baseline(self, bw):
        protected = bw.run(4, setup=figure1_setup(4))
        baseline = bw.run_baseline(4, setup=figure1_setup(4))
        assert protected.status == baseline.status == "ok"
        assert (protected.memory.get_array("result")
                == baseline.memory.get_array("result"))

    def test_overhead_above_one(self, bw):
        assert bw.overhead(4, setup=figure1_setup(4)) > 1.0

    def test_inject_improves_coverage(self, bw):
        stats = bw.inject(FaultType.BRANCH_FLIP, nthreads=4, injections=30,
                          setup=figure1_setup(4), output_globals=("result",))
        assert stats.coverage_protected > stats.coverage_original


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_every_kernel_detects_something(name, compiled_kernels):
    """A small flip campaign must produce at least one detection on every
    program (raytrace included — some of its branches are still checked)."""
    from repro.faults import CampaignConfig, Outcome, run_campaign

    spec, prog = compiled_kernels[name]
    config = CampaignConfig(nthreads=4, injections=15, seed=5,
                            output_globals=spec.output_globals,
                            quantize_bits=spec.sdc_quantize_bits)
    campaign = run_campaign(prog, FaultType.BRANCH_FLIP, config,
                            setup=spec.setup(4))
    stats = campaign.stats
    assert stats.activated > 0
    assert stats.counts.get(Outcome.DETECTED, 0) > 0, stats.counts
    assert stats.coverage_protected >= stats.coverage_original


def test_coverage_gain_on_protected_programs(compiled_kernels):
    """Aggregate sanity: across the suite (minus raytrace, by design),
    BLOCKWATCH must improve flip coverage substantially."""
    from repro.faults import CampaignConfig, run_campaign

    gains = []
    for name in ("radix", "ocean_noncontig"):
        spec, prog = compiled_kernels[name]
        config = CampaignConfig(nthreads=4, injections=25, seed=17,
                                output_globals=spec.output_globals,
                                quantize_bits=spec.sdc_quantize_bits)
        stats = run_campaign(prog, FaultType.BRANCH_FLIP, config,
                             setup=spec.setup(4)).stats
        gains.append(stats.detection_gain)
    assert max(gains) > 0.3
