"""Targeted detection tests: for each check kind, construct a program
where that check is the one protecting the branch, inject the precise
fault it should catch, and assert the detection carries the right rule.
"""

import pytest

from repro.faults import FaultSpec, FaultType, InjectingHook
from repro.runtime import ParallelProgram

PRELUDE = """
global int nprocs;
global int n = 16;
global int data[64];
global int out[64];
global barrier bar;
"""


def build(body: str) -> ParallelProgram:
    return ParallelProgram(PRELUDE + "func slave() { %s }" % body)


def setup(nthreads):
    def apply(memory):
        memory.set_scalar("nprocs", nthreads)
        memory.set_array("data", list(range(64)))
    return apply


def inject_flip(program, nthreads, thread, index):
    hook = InjectingHook(FaultSpec(FaultType.BRANCH_FLIP, thread, index))
    result = program.run_protected(nthreads, setup=setup(nthreads),
                                   fault_hook=hook)
    assert hook.activated
    return result


def check_kind_of(program, block_name):
    for record in program.analysis.per_function["slave"].branches:
        if record.branch.parent.name == block_name:
            return record.check_kind
    raise KeyError(block_name)


class TestSharedCheck:
    def test_flip_of_shared_branch_detected(self):
        program = build("""
          local int i;
          for (i = 0; i < n; i = i + 1) { out[tid()] = i; }
        """)
        assert check_kind_of(program, "loop.header") == "shared"
        result = inject_flip(program, 4, thread=2, index=5)
        assert result.detected
        rules = {v.rule for v in result.violations}
        assert rules & {"shared-outcome", "shared-values"}


class TestUniformCheck:
    def test_partitioned_loop_flip_detected(self):
        program = build("""
          local int t = tid();
          local int per = n / nprocs;
          local int i;
          for (i = t * per; i < t * per + per; i = i + 1) {
            out[i] = i;
          }
          barrier(bar);
        """)
        assert check_kind_of(program, "loop.header") == "uniform"
        result = inject_flip(program, 4, thread=1, index=2)
        assert result.detected
        assert any(v.rule == "uniform" for v in result.violations)


class TestTidEqCheck:
    def test_second_taker_detected(self):
        program = build("""
          local int t = tid();
          if (t == 0) { out[0] = 1; }
          barrier(bar);
        """)
        assert check_kind_of(program, "entry") == "tid_eq"
        # thread 3's only branch is the tid test; flipping makes it take
        result = inject_flip(program, 4, thread=3, index=1)
        assert result.detected
        assert any(v.rule == "tid-eq" for v in result.violations)

    def test_lost_taker_escapes(self):
        """Flipping the true taker leaves zero takers — consistent with
        'at most one', so undetected (a known coverage gap)."""
        program = build("""
          local int t = tid();
          if (t == 0) { out[0] = 1; }
          barrier(bar);
        """)
        result = inject_flip(program, 4, thread=0, index=1)
        assert not any(v.rule == "tid-eq" for v in result.violations)


class TestTidMonotoneCheck:
    def test_hole_in_taker_block_detected(self):
        program = build("""
          local int t = tid();
          if (t < nprocs / 2) { out[t] = 1; }
          barrier(bar);
        """)
        assert check_kind_of(program, "entry") == "tid_monotone"
        # thread 0 is a taker; flipping it punches a hole in the low block
        result = inject_flip(program, 4, thread=0, index=1)
        assert result.detected
        assert any(v.rule == "tid-monotone" for v in result.violations)

    def test_boundary_flip_escapes(self):
        """Flipping the taker adjacent to the threshold just moves the
        boundary — still monotone, hence undetected by design."""
        program = build("""
          local int t = tid();
          if (t < nprocs / 2) { out[t] = 1; }
          barrier(bar);
        """)
        result = inject_flip(program, 4, thread=1, index=1)
        assert not any(v.rule == "tid-monotone" for v in result.violations)


class TestPartialCheck:
    def test_group_disagreement_detected(self):
        program = build("""
          local int mode;
          if (n > 8) { mode = 1; } else { mode = 2; }
          if (mode > 0) { out[tid()] = mode; }
          barrier(bar);
        """)
        assert check_kind_of(program, "if.end") == "partial"
        # dynamic branches per thread: 1 = seed branch, 2 = partial branch
        result = inject_flip(program, 2, thread=1, index=2)
        assert result.detected
        assert any(v.rule == "partial" for v in result.violations)

    def test_promoted_none_with_singleton_groups_escapes(self):
        program = build("""
          local int t = tid();
          if (data[t] > 5) { out[t] = 1; }
          barrier(bar);
        """)
        record = check_kind_of(program, "entry")
        assert record == "partial"
        # every thread reads a different data[t]: groups are singletons
        result = inject_flip(program, 4, thread=2, index=1)
        assert not result.detected


class TestDetectionLatencyIndependence:
    def test_detection_survives_crash_after_fault(self):
        """Evidence already in the queues still produces a detection even
        if the program later crashes (the monitor outlives the threads)."""
        program = build("""
          local int i;
          for (i = 0; i < n; i = i + 1) { out[tid()] = i; }
          out[i + 100] = 1;    // OOB after the loop -> guaranteed crash
        """)
        hook = InjectingHook(FaultSpec(FaultType.BRANCH_FLIP, 1, 3))
        result = program.run_protected(4, setup=setup(4), fault_hook=hook)
        assert result.status == "crash"
        assert result.detected
