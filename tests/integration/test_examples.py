"""Smoke tests: every shipped example must run to completion.

The examples are documentation that executes; breaking one is breaking
the README's promises.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name: str, *args: str) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    result = subprocess.run(
        [sys.executable, path, *args], capture_output=True, text=True,
        timeout=600, check=False)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "BLOCKWATCH caught the fault" in out


def test_static_analysis_tour():
    out = run_example("static_analysis_tour.py")
    assert "threadID" in out and "partial" in out
    assert "tid-counter globals recognized: ['id']" in out


def test_fault_injection_campaign():
    out = run_example("fault_injection_campaign.py", "15")
    assert "cov(BLOCKWATCH)" in out


def test_custom_kernel():
    out = run_example("custom_kernel.py")
    assert "histogram:" in out
    assert "coverage" in out


@pytest.mark.slow
def test_scalability_study():
    out = run_example("scalability_study.py", "radix")
    assert "overhead" in out


def test_store_value_checking():
    out = run_example("store_value_checking.py")
    assert "silent data corruption" in out
    assert "caught at the store" in out
