"""Tests for the check_stores extension (the paper's closing future-work
item: checking similarity of regular data, not just control data).

The payoff case: a condition fault corrupts a register that holds a
*shared* value; the corrupted register survives the branch (condition
faults persist) and flows into a store — the store-value check catches
what no control-flow check can.
"""

import pytest

from repro.analysis import AnalysisConfig
from repro.faults import FaultSpec, FaultType, InjectingHook
from repro.faults import run_false_positive_trial
from repro.runtime import ParallelProgram

SOURCE = """
global int nprocs;
global int n = 8;
global int flags[64];
global barrier bar;

func slave() {
  local int t = tid();
  local int mark = n * 3 + 1;      // shared value held in a register
  if (mark > 1000) {                // a branch whose condition is `mark`
    flags[63] = 0;                  // (never taken; mark stays shared)
  }
  local int i;
  for (i = 0; i < 4; i = i + 1) {
    flags[t * 4 + i] = mark;        // checked store
  }
  barrier(bar);
}
"""


def setup(memory):
    memory.set_scalar("nprocs", 4)


@pytest.fixture(scope="module")
def program():
    return ParallelProgram(SOURCE, "stores",
                           analysis_config=AnalysisConfig(check_stores=True))


class TestStoreChecking:
    def test_store_check_instrumented(self, program):
        kinds = [info.check_kind
                 for info in program.metadata.branches.values()]
        assert "store_shared" in kinds

    def test_clean_runs_have_no_false_positives(self, program):
        assert run_false_positive_trial(program, 4, 10, 77, setup=setup) == 0

    def test_corrupted_shared_register_detected_at_the_store(self, program):
        """Corrupt `mark` at the `mark > 0` branch (bit 5: the branch
        outcome does not flip, so no control check fires) — the store
        check must catch the corrupted value downstream."""
        hook = InjectingHook(FaultSpec(
            FaultType.BRANCH_CONDITION, thread_id=2, branch_index=1,
            bit=5, rng_seed=1))
        result = program.run_protected(4, setup=setup, fault_hook=hook)
        assert hook.activated
        assert not hook.flipped_branch  # the control checks saw nothing odd
        assert result.detected
        assert any(v.rule == "store-shared" for v in result.violations)

    def test_without_extension_the_same_fault_escapes(self):
        plain = ParallelProgram(SOURCE, "stores.plain")
        hook = InjectingHook(FaultSpec(
            FaultType.BRANCH_CONDITION, thread_id=2, branch_index=1,
            bit=5, rng_seed=1))
        result = plain.run_protected(4, setup=setup, fault_hook=hook)
        assert hook.activated
        assert not result.detected  # SDC in flags[], silently

    def test_disabled_by_default(self):
        plain = ParallelProgram(SOURCE, "stores.default")
        kinds = [info.check_kind
                 for info in plain.metadata.branches.values()]
        assert "store_shared" not in kinds
