"""Differential property test: the interpreter vs a Python oracle.

Hypothesis generates random integer expression trees; each is rendered
to MiniC (`output(expr)`), compiled, interpreted, and compared against a
Python evaluation using the same C-style semantics (truncating division,
64-bit wrapping).  Any disagreement is a front-end or interpreter bug.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.runtime import Machine, int_div, int_mod, wrap_int
from repro.frontend import compile_source

#: Fixed variable environment baked into each generated program.
VARIABLES = {"a": 7, "b": -3, "c": 1002, "d": 0, "e": -123456789}


class Expr:
    def render(self) -> str:
        raise NotImplementedError

    def evaluate(self) -> int:
        raise NotImplementedError


class Lit(Expr):
    def __init__(self, value: int):
        self.value = value

    def render(self):
        # negative literals need parens to survive precedence
        return str(self.value) if self.value >= 0 else "(0 - %d)" % -self.value

    def evaluate(self):
        return wrap_int(self.value)


class Var(Expr):
    def __init__(self, name: str):
        self.name = name

    def render(self):
        return self.name

    def evaluate(self):
        return VARIABLES[self.name]


class Bin(Expr):
    OPS = {
        "+": lambda a, b: wrap_int(a + b),
        "-": lambda a, b: wrap_int(a - b),
        "*": lambda a, b: wrap_int(a * b),
        "&": lambda a, b: a & b,
        "|": lambda a, b: a | b,
        "^": lambda a, b: a ^ b,
    }

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        self.op, self.lhs, self.rhs = op, lhs, rhs

    def render(self):
        return "(%s %s %s)" % (self.lhs.render(), self.op, self.rhs.render())

    def evaluate(self):
        return self.OPS[self.op](self.lhs.evaluate(), self.rhs.evaluate())


class DivMod(Expr):
    """Division/modulo with a divisor forced nonzero."""

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        self.op, self.lhs, self.rhs = op, lhs, rhs

    def render(self):
        # guard: (rhs | 1) is never zero and keeps C semantics honest
        return "(%s %s (%s | 1))" % (self.lhs.render(), self.op,
                                     self.rhs.render())

    def evaluate(self):
        divisor = self.rhs.evaluate() | 1
        if self.op == "/":
            return int_div(self.lhs.evaluate(), divisor)
        return int_mod(self.lhs.evaluate(), divisor)


class Shift(Expr):
    def __init__(self, op: str, lhs: Expr, amount: int):
        self.op, self.lhs, self.amount = op, lhs, amount

    def render(self):
        return "(%s %s %d)" % (self.lhs.render(), self.op, self.amount)

    def evaluate(self):
        value = self.lhs.evaluate()
        if self.op == "<<":
            return wrap_int(value << self.amount)
        return value >> self.amount


class Cond(Expr):
    """min/max and comparison-driven selection via builtins."""

    def __init__(self, kind: str, lhs: Expr, rhs: Expr):
        self.kind, self.lhs, self.rhs = kind, lhs, rhs

    def render(self):
        return "%s(%s, %s)" % (self.kind, self.lhs.render(), self.rhs.render())

    def evaluate(self):
        a, b = self.lhs.evaluate(), self.rhs.evaluate()
        return min(a, b) if self.kind == "min" else max(a, b)


def expr_strategy():
    leaves = st.one_of(
        st.integers(min_value=0, max_value=2 ** 40).map(Lit),
        st.sampled_from(sorted(VARIABLES)).map(Var),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(sorted(Bin.OPS)), children, children)
            .map(lambda t: Bin(*t)),
            st.tuples(st.sampled_from(["/", "%"]), children, children)
            .map(lambda t: DivMod(*t)),
            st.tuples(st.sampled_from(["<<", ">>"]), children,
                      st.integers(min_value=0, max_value=40))
            .map(lambda t: Shift(*t)),
            st.tuples(st.sampled_from(["min", "max"]), children, children)
            .map(lambda t: Cond(*t)),
        )

    return st.recursive(leaves, extend, max_leaves=12)


def run_minic_expression(source_expr: str) -> int:
    decls = "".join("global int %s = %d;\n" % (name, value)
                    for name, value in sorted(VARIABLES.items()))
    source = decls + "func slave() { output(%s); }" % source_expr
    module = compile_source(source)
    result = Machine(module, 1, entry="slave").run()
    assert result.status == "ok", result.failure_message
    return result.outputs[0][0]


@given(expr_strategy())
@settings(max_examples=120, deadline=None)
def test_interpreter_matches_python_oracle(expr):
    assert run_minic_expression(expr.render()) == expr.evaluate()
