"""Property test: zero false positives on *generated* SPMD programs.

A small random-program generator emits race-free MiniC kernels that mix
all the constructs the analysis distinguishes — shared loop bounds,
tid-partitioned loops, partial seeds from if-else joins, per-thread data
reads, helper functions with shared and tid arguments, locks and
barriers.  Every generated program, on every generated schedule, must
run clean under the full monitor: the no-false-positive guarantee is
structural, so any report here is a bug in the analysis, the
instrumentation, the runtime keys, or the checks.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import ParallelProgram

#: Hypothesis-driven campaign over generated programs — deselect with
#: ``-m "not slow"`` for a fast inner loop.
pytestmark = pytest.mark.slow

PRELUDE = """
global int id;
global int nprocs;
global int n = 16;
global int c1 = 3;
global int c2 = 7;
global int data[128];
global int out[512];
global lock l;
global barrier bar;
"""


class ProgramGenerator:
    """Emits one random race-free SPMD kernel per seed."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.lines = []
        self.indent = 1
        self.scalar_pool = ["n", "c1", "c2"]
        self.partial_vars = []
        self.local_counter = 0

    def emit(self, text: str) -> None:
        self.lines.append("  " * self.indent + text)

    def fresh(self) -> str:
        self.local_counter += 1
        return "v%d" % self.local_counter

    def shared_expr(self) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.4:
            return str(rng.randrange(0, 8))
        if roll < 0.8:
            return rng.choice(self.scalar_pool)
        return "%s + %d" % (rng.choice(self.scalar_pool), rng.randrange(1, 4))

    def condition(self) -> str:
        rng = self.rng
        kind = rng.random()
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        if kind < 0.35 or not self.partial_vars:
            return "%s %s %s" % (self.shared_expr(), op, self.shared_expr())
        if kind < 0.6:
            return "%s %s %s" % (rng.choice(self.partial_vars), op,
                                 self.shared_expr())
        if kind < 0.8:
            return "procid %s %s" % (op, self.shared_expr())
        return "data[(procid + %d) %% 128] %s %s" % (
            rng.randrange(0, 64), op, self.shared_expr())

    def gen_partial_seed(self) -> None:
        name = self.fresh()
        self.emit("local int %s;" % name)
        self.emit("if (%s) {" % self.condition_shared_only())
        self.emit("  %s = %s;" % (name, self.shared_expr()))
        self.emit("} else {")
        self.emit("  %s = %s;" % (name, self.shared_expr()))
        self.emit("}")
        self.partial_vars.append(name)

    def condition_shared_only(self) -> str:
        op = self.rng.choice(["<", ">", "==", "!="])
        return "%s %s %s" % (self.shared_expr(), op, self.shared_expr())

    def gen_statement(self, depth: int) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.25 and depth < 3:
            self.emit("if (%s) {" % self.condition())
            self.indent += 1
            for _ in range(rng.randrange(1, 3)):
                self.gen_statement(depth + 1)
            self.indent -= 1
            self.emit("}")
        elif roll < 0.45 and depth < 2:
            var = self.fresh()
            bound = rng.choice(["4", "8", "n / 2"])
            self.emit("local int %s;" % var)
            self.emit("for (%s = 0; %s < %s; %s = %s + 1) {"
                      % (var, var, bound, var, var))
            self.indent += 1
            for _ in range(rng.randrange(1, 3)):
                self.gen_statement(depth + 1)
            self.indent -= 1
            self.emit("}")
        elif roll < 0.6:
            self.gen_partial_seed()
        elif roll < 0.8:
            # write to a procid-owned slot: race-free by construction
            self.emit("out[procid * 16 + %d] = out[procid * 16 + %d] + %s;"
                      % (rng.randrange(16), rng.randrange(16),
                         self.shared_expr()))
        else:
            var = self.fresh()
            self.emit("local int %s = %s * 2 + procid;" % (var,
                                                           self.shared_expr()))
            self.emit("if (%s > %s) {" % (var, self.shared_expr()))
            self.emit("  out[procid * 16] = out[procid * 16] + 1;")
            self.emit("}")

    def generate(self) -> str:
        rng = self.rng
        self.emit("local int procid;")
        if rng.random() < 0.5:
            self.emit("lock(l);")
            self.emit("procid = id;")
            self.emit("id = id + 1;")
            self.emit("unlock(l);")
        else:
            self.emit("procid = tid();")
        nstmts = rng.randrange(3, 8)
        for index in range(nstmts):
            self.gen_statement(0)
            if rng.random() < 0.25:
                self.emit("barrier(bar);")
        self.emit("barrier(bar);")
        return PRELUDE + "func slave() {\n" + "\n".join(self.lines) + "\n}\n"


def setup_for(nthreads: int, input_seed: int):
    def apply(memory):
        rng = random.Random(input_seed)
        memory.set_scalar("nprocs", nthreads)
        memory.set_array("data", [rng.randrange(0, 16) for _ in range(128)])
    return apply


@given(program_seed=st.integers(min_value=0, max_value=10 ** 6),
       schedule_seed=st.integers(min_value=0, max_value=10 ** 6),
       nthreads=st.sampled_from([2, 4, 8]))
@settings(max_examples=30, deadline=None)
def test_generated_programs_have_no_false_positives(program_seed,
                                                    schedule_seed, nthreads):
    source = ProgramGenerator(program_seed).generate()
    program = ParallelProgram(source, "fuzz%d" % program_seed)
    result = program.run_protected(nthreads, seed=schedule_seed,
                                   setup=setup_for(nthreads, program_seed))
    assert result.status == "ok", (source, result.failure_message)
    assert not result.detected, (
        "FALSE POSITIVE on generated program (seed %d):\n%s\n%s"
        % (program_seed, source, result.violations[:3]))
