"""Tests for the ``repro-minic`` command-line tool."""

import pytest

from repro.cli import main

DEMO = """
global int nprocs;
global int n = 8;
global int out[32];
global barrier b;

func slave() {
  local int t = tid();
  local int i;
  for (i = 0; i < n; i = i + 1) {
    out[t] = out[t] + i;
  }
  if (t == 0) { output(out[0]); }
  barrier(b);
}
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.mc"
    path.write_text(DEMO)
    return str(path)


class TestDumpAndReport:
    def test_dump_prints_ir(self, demo_file, capsys):
        assert main(["dump", demo_file]) == 0
        out = capsys.readouterr().out
        assert "func slave()" in out and "gettid" in out

    def test_report_prints_classification(self, demo_file, capsys):
        assert main(["report", demo_file]) == 0
        out = capsys.readouterr().out
        assert "tid_eq" in out and "shared" in out


class TestRun:
    def test_run_protected(self, demo_file, capsys):
        code = main(["run", demo_file, "-t", "4", "--show", "out"])
        out = capsys.readouterr().out
        assert code == 0
        assert "status: ok" in out
        assert "thread 0 output: [28]" in out
        assert "out = [28, 28, 28, 28" in out

    def test_run_baseline(self, demo_file, capsys):
        assert main(["run", demo_file, "-t", "2", "--baseline"]) == 0
        assert "status: ok" in capsys.readouterr().out

    def test_set_overrides_scalar(self, demo_file, capsys):
        main(["run", demo_file, "-t", "1", "--set", "n=3", "--show", "out"])
        out = capsys.readouterr().out
        assert "thread 0 output: [3]" in out  # 0+1+2

    def test_fill_overrides_array(self, demo_file, capsys):
        main(["run", demo_file, "-t", "1", "--set", "n=1",
              "--fill", "out=100", "--show", "out"])
        out = capsys.readouterr().out
        assert "thread 0 output: [100]" in out

    def test_crashing_program_reports_nonzero(self, tmp_path, capsys):
        path = tmp_path / "crash.mc"
        path.write_text("global int a[4];\nfunc slave() { a[9] = 1; }\n")
        assert main(["run", str(path), "-t", "1"]) == 1
        out = capsys.readouterr().out
        assert "status: crash" in out

    def test_bad_set_syntax_rejected(self, demo_file):
        with pytest.raises(SystemExit):
            main(["run", demo_file, "--set", "oops"])


class TestInject:
    def test_campaign_summary(self, demo_file, capsys):
        assert main(["inject", demo_file, "-t", "4", "-n", "10",
                     "--outputs", "out"]) == 0
        out = capsys.readouterr().out
        assert "cov(BW)" in out
        assert "branch-flip" in out

    def test_condition_fault_choice(self, demo_file, capsys):
        assert main(["inject", demo_file, "-t", "2", "-n", "5",
                     "--fault", "condition", "--outputs", "out"]) == 0
        assert "branch-condition" in capsys.readouterr().out


class TestArgumentErrors:
    """Bad operands exit with a one-line message, never a traceback."""

    def test_unknown_kernel_message(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["dump", "kernel:nope"])
        message = str(excinfo.value.code)
        assert message.startswith("error:")
        assert "nope" in message and "radix" in message

    def test_missing_program_path_message(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["dump", "/no/such/program.mc"])
        message = str(excinfo.value.code)
        assert message.startswith("error:")
        assert "/no/such/program.mc" in message

    def test_run_subcommand_shares_the_handling(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "kernel:nope", "-t", "2"])
        assert str(excinfo.value.code).startswith("error:")
