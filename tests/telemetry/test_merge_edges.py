"""TelemetrySnapshot.merge edge cases: identities, disjoint domains,
the gauge max rule, and associativity on awkward inputs."""

from __future__ import annotations

from repro.telemetry import TelemetrySnapshot


def snap(**kwargs):
    return TelemetrySnapshot(**kwargs)


def test_merge_with_empty_is_identity_both_ways():
    loaded = snap(counters={"a": 3}, gauges={"g": 7},
                  hists={"h": {2: 5, 3: 1}}, timers={"t": (2, 900)},
                  events=[{"kind": "x", "seq": 0, "inj": 0}])
    empty = snap()
    assert empty.is_empty
    for merged in (loaded.merge(empty), empty.merge(loaded)):
        assert merged == loaded
    # merge returns a *new* snapshot; the operands are untouched.
    loaded.merge(snap(counters={"a": 1}))
    assert loaded.counters == {"a": 3}


def test_merge_of_two_empties_is_empty():
    assert snap().merge(snap()).is_empty


def test_disjoint_counter_and_histogram_domains_union():
    a = snap(counters={"only.a": 1}, hists={"h": {1: 4}})
    b = snap(counters={"only.b": 2}, hists={"h": {8: 6}, "other": {0: 1}})
    merged = a.merge(b)
    assert merged.counters == {"only.a": 1, "only.b": 2}
    # Disjoint buckets of the same histogram coexist; no bucket is
    # dropped or collapsed.
    assert merged.hists["h"] == {1: 4, 8: 6}
    assert merged.hists["other"] == {0: 1}


def test_overlapping_histogram_buckets_sum():
    a = snap(hists={"h": {2: 3, 5: 1}})
    b = snap(hists={"h": {2: 4}})
    assert a.merge(b).hists["h"] == {2: 7, 5: 1}


def test_gauge_merges_by_max_not_sum():
    a = snap(gauges={"depth": 9, "only.a": 2})
    b = snap(gauges={"depth": 4, "only.b": 11})
    merged = a.merge(b)
    assert merged.gauges == {"depth": 9, "only.a": 2, "only.b": 11}
    # Commutative: max picks the same winner from either side.
    assert b.merge(a).gauges == merged.gauges
    # A gauge present on one side only keeps its value even when the
    # value is 0 (max against an *absent* entry, not against 0).
    assert snap(gauges={"z": 0}).merge(snap()).gauges == {"z": 0}


def test_timer_pairs_sum_componentwise():
    a = snap(timers={"t": (2, 1000)})
    b = snap(timers={"t": (3, 500), "u": (1, 10)})
    merged = a.merge(b)
    assert merged.timers == {"t": (5, 1500), "u": (1, 10)}


def test_merge_associativity_on_mixed_snapshots():
    a = snap(counters={"c": 1}, gauges={"g": 5}, hists={"h": {0: 1}},
             events=[{"kind": "e", "seq": 0, "inj": 2}])
    b = snap(counters={"c": 10}, gauges={"g": 2}, hists={"h": {4: 2}},
             events=[{"kind": "e", "seq": 0, "inj": 0}])
    c = snap(counters={"d": 7}, gauges={"g": 9},
             events=[{"kind": "e", "seq": 1, "inj": 0}])
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left == right
    # Events land in (inj, seq) order whatever the grouping.
    assert [(e["inj"], e["seq"]) for e in left.events] == [
        (0, 0), (0, 1), (2, 0)]


def test_merge_all_skips_none_operands():
    merged = TelemetrySnapshot.merge_all(
        [None, snap(counters={"a": 1}), None, snap(counters={"a": 2})])
    assert merged.counters == {"a": 3}
    assert TelemetrySnapshot.merge_all([None, None]).is_empty


def test_roundtrip_preserves_merge_result():
    a = snap(counters={"c": 1}, gauges={"g": 5}, hists={"h": {2: 5}},
             timers={"t": (1, 250)},
             events=[{"kind": "e", "seq": 0, "inj": -1}])
    b = snap(hists={"h": {3: 1}})
    merged = a.merge(b)
    assert TelemetrySnapshot.from_dict(merged.to_dict()) == merged
