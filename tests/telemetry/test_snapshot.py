"""TelemetrySnapshot algebra: merge associativity, identity, roundtrip."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    DISABLED,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
    active,
    bucket_bounds,
    bucket_of,
    event_sort_key,
)


def _snapshot(tag: int) -> TelemetrySnapshot:
    tel = Telemetry(context={"inj": tag, "seed": 7 * tag})
    tel.count("runs")
    tel.count("steps", 10 * (tag + 1))
    tel.gauge_max("hwm", 5 * tag)
    tel.observe("batch", tag + 1)
    tel.observe("batch", 4 * (tag + 1))
    tel.add_time_ns("wall_ns", 1000 + tag)
    tel.event("run_start", nthreads=4)
    tel.event("run_end", status="ok", steps=10 * (tag + 1), violations=0)
    return tel.snapshot()


def test_merge_is_associative_and_commutative():
    a, b, c = _snapshot(0), _snapshot(1), _snapshot(2)

    left = TelemetrySnapshot.merge_all([a, b]).merge(c)
    right = a.merge(TelemetrySnapshot.merge_all([b, c]))
    assert left == right

    assert a.merge(b) == b.merge(a)


def test_merge_identity_and_merge_all_empty():
    a = _snapshot(3)
    empty = TelemetrySnapshot()
    assert a.merge(empty) == a
    assert empty.merge(a) == a
    assert TelemetrySnapshot.merge_all([]) == empty
    assert TelemetrySnapshot.merge_all([a]) == a


def test_merge_does_not_mutate_operands():
    a, b = _snapshot(0), _snapshot(1)
    a_before, b_before = a.to_dict(), b.to_dict()
    a.merge(b)
    assert a.to_dict() == a_before
    assert b.to_dict() == b_before


def test_merge_semantics():
    a, b = _snapshot(0), _snapshot(1)
    merged = a.merge(b)
    assert merged.counter("runs") == 2
    assert merged.counter("steps") == 30
    assert merged.gauges["hwm"] == 5          # max, not sum
    assert sum(merged.hists["batch"].values()) == 4
    count, total = merged.timers["wall_ns"]
    assert (count, total) == (2, 2001)
    # Events interleave by (inj, seq) regardless of merge order.
    assert [event_sort_key(e) for e in merged.events] == sorted(
        event_sort_key(e) for e in merged.events)


def test_dict_roundtrip():
    a = _snapshot(4)
    assert TelemetrySnapshot.from_dict(a.to_dict()) == a
    merged = a.merge(_snapshot(5))
    assert TelemetrySnapshot.from_dict(merged.to_dict()) == merged


def test_events_carry_context_and_sequence():
    tel = Telemetry(context={"inj": 9, "seed": 123})
    tel.event("run_start", nthreads=2)
    tel.event("run_end", status="ok", steps=1, violations=0)
    events = tel.snapshot().events
    assert [e["seq"] for e in events] == [0, 1]
    assert all(e["inj"] == 9 and e["seed"] == 123 for e in events)
    assert [e["kind"] for e in events] == ["run_start", "run_end"]


def test_timer_context_manager_counts_samples():
    tel = Telemetry()
    with tel.timer("t_ns"):
        pass
    with tel.timer("t_ns"):
        pass
    count, total = tel.snapshot().timers["t_ns"]
    assert count == 2
    assert total >= 0


def test_bucket_of_and_bounds():
    assert bucket_of(0) == 0
    assert bucket_of(-5) == 0
    assert bucket_of(1) == 1
    assert bucket_of(7) == 3
    assert bucket_of(8) == 4
    lo, hi = bucket_bounds(3)
    assert (lo, hi) == (4, 7)


def test_disabled_collectors_are_inert():
    assert active(None) is None
    assert active(DISABLED) is None
    null = NullTelemetry()
    assert not null.enabled
    null.count("x")
    null.gauge_max("x", 5)
    null.observe("x", 5)
    null.add_time_ns("x", 5)
    null.event("run_start", nthreads=1)
    with null.timer("x"):
        pass
    snap = null.snapshot()
    assert snap == TelemetrySnapshot()
    live = Telemetry()
    assert active(live) is live


def test_format_summary_and_rate():
    snap = _snapshot(0)
    text = snap.format_summary()
    assert "runs" in text and "batch" in text
    # steps=10 over 1000 ns -> 1e7 steps/s
    assert snap.rate("steps", "wall_ns") == pytest.approx(1e7)
    assert TelemetrySnapshot().rate("steps", "wall_ns") == 0.0
