"""Campaign telemetry: partition-independence and the disabled path.

The acceptance bar from the redesign: a ``jobs=N`` campaign's merged
snapshot must be bit-identical to the serial run's in everything except
wall-clock timers, and with telemetry off nothing may be collected.
"""

from __future__ import annotations

import pytest

from repro.faults import CampaignConfig, CampaignResult, FaultType, run_campaign
from repro.runtime import ParallelProgram
from repro.telemetry import Telemetry, sort_events, validate_event

from tests.conftest import figure1_setup

THREADS = 4
INJECTIONS = 8
SEED = 2012


def _campaign(program, jobs):
    config = CampaignConfig(nthreads=THREADS, injections=INJECTIONS,
                            seed=SEED, output_globals=("result",))
    return run_campaign(program, FaultType.BRANCH_FLIP, config,
                        setup=figure1_setup(THREADS), jobs=jobs,
                        telemetry=True)


@pytest.fixture(scope="module")
def serial_and_pooled(figure1_program):
    return _campaign(figure1_program, 1), _campaign(figure1_program, 4)


def test_partitioning_changes_only_timers(serial_and_pooled):
    serial, pooled = serial_and_pooled
    assert serial.stats == pooled.stats
    assert serial.telemetry.counters == pooled.telemetry.counters
    assert serial.telemetry.gauges == pooled.telemetry.gauges
    assert serial.telemetry.hists == pooled.telemetry.hists
    # Timers exist in both but carry wall-clock, so only names align.
    assert set(serial.telemetry.timers) <= set(pooled.telemetry.timers) | {
        "campaign.chunk_ns"}


def test_traces_are_record_identical(serial_and_pooled):
    serial, pooled = serial_and_pooled
    assert sort_events(serial.trace_events) == sort_events(pooled.trace_events)


def test_trace_is_schema_valid_and_complete(serial_and_pooled):
    serial, _ = serial_and_pooled
    events = serial.trace_events
    for event in events:
        validate_event(event)
    kinds = [e["kind"] for e in events]
    assert kinds.count("campaign_start") == 1
    assert kinds.count("campaign_end") == 1
    assert kinds.count("injection_start") == INJECTIONS
    assert kinds.count("injection_end") == INJECTIONS
    # Golden run + every injection each bracket a machine run.
    assert kinds.count("run_start") == INJECTIONS + 1
    assert kinds.count("run_end") == INJECTIONS + 1
    # Every event is seed-stamped and (inj, seq) keys are unique.
    keys = {(e["inj"], e["seq"]) for e in events}
    assert len(keys) == len(events)
    assert all("seed" in e for e in events)


def test_write_trace_roundtrip(serial_and_pooled, tmp_path):
    serial, _ = serial_and_pooled
    path = str(tmp_path / "campaign.jsonl")
    count = serial.write_trace(path)
    assert count == len(serial.trace_events)
    from repro.telemetry import read_trace
    assert read_trace(path) == sort_events(serial.trace_events)


def test_campaign_counters_cover_the_stack(serial_and_pooled):
    serial, _ = serial_and_pooled
    tel = serial.telemetry
    assert tel.counter("campaign.injections") == INJECTIONS
    outcome_total = sum(v for k, v in tel.counters.items()
                       if k.startswith("campaign.outcome."))
    assert outcome_total == INJECTIONS
    # Monitor + interpreter facts flowed into the same merged snapshot.
    assert tel.counter("interp.runs") == INJECTIONS + 1
    assert tel.counter("monitor.checks") > 0
    assert tel.counter("interp.steps") > 0


def test_disabled_campaign_collects_nothing(figure1_program):
    config = CampaignConfig(nthreads=THREADS, injections=2, seed=SEED,
                            output_globals=("result",))
    result = run_campaign(figure1_program, FaultType.BRANCH_FLIP, config,
                          setup=figure1_setup(THREADS))
    assert isinstance(result, CampaignResult)
    assert result.telemetry is None
    assert result.trace_events == []
    with pytest.raises(ValueError, match="without telemetry"):
        result.write_trace("/tmp/never-written.jsonl")


def test_disabled_run_collects_nothing(figure1_program):
    result = figure1_program.run_protected(
        THREADS, seed=0, setup=figure1_setup(THREADS))
    assert result.telemetry is None


def test_enabled_run_snapshot_matches_result(figure1_program):
    tel = Telemetry(context={"inj": -1, "seed": 0})
    result = figure1_program.run_protected(
        THREADS, seed=0, setup=figure1_setup(THREADS), telemetry=tel)
    snap = result.telemetry
    assert snap is not None
    assert snap.counter("interp.steps") == result.steps
    assert snap.counter("interp.runs") == 1
    assert snap.gauge("interp.parallel_cycles") == int(result.parallel_time)
    kinds = [e["kind"] for e in snap.events]
    assert kinds == (["run_start"]
                     + ["thread_metrics"] * THREADS
                     + ["run_end"])
    metrics = [e for e in snap.events if e["kind"] == "thread_metrics"]
    assert [m["tid"] for m in metrics] == list(range(THREADS))
    assert sum(m["steps"] for m in metrics) == result.steps
    for m in metrics:
        assert m["cycles"] >= 0
        assert m["sync_wait"] >= 0
        assert m["queue_stall"] >= 0
