"""The redesigned result-object API: MonitorMode, inject(), back-compat."""

from __future__ import annotations

import pickle

import pytest

import repro
from repro import BlockWatch, MonitorMode
from repro.faults import CampaignConfig, CampaignResult, CampaignStats, FaultType
from repro.monitor import MODE_FEED, MODE_FULL

from tests.conftest import FIGURE_1, figure1_setup


@pytest.fixture(scope="module")
def bw():
    return BlockWatch(FIGURE_1, name="figure1")


@pytest.fixture(scope="module")
def small_result(bw):
    return bw.inject(FaultType.BRANCH_FLIP, nthreads=4, injections=4,
                     setup=figure1_setup(4), output_globals=("result",),
                     seed=2012)


def test_monitor_mode_enum_and_strings():
    assert MonitorMode.coerce("full") is MonitorMode.FULL
    assert MonitorMode.coerce("feed") is MonitorMode.FEED
    assert MonitorMode.coerce(MonitorMode.FEED) is MonitorMode.FEED
    # str subclass: legacy comparisons and the old constants keep working.
    assert MonitorMode.FULL == "full"
    assert MODE_FULL is MonitorMode.FULL
    assert MODE_FEED is MonitorMode.FEED
    with pytest.raises(ValueError, match="unknown monitor mode"):
        MonitorMode.coerce("bogus")


def test_run_accepts_enum_and_string(bw):
    for mode in (MonitorMode.FEED, "feed"):
        result = bw.run(4, setup=figure1_setup(4), monitor_mode=mode)
        assert result.status == "ok"


def test_inject_returns_full_campaign_result(small_result):
    assert isinstance(small_result, CampaignResult)
    assert isinstance(small_result.stats, CampaignStats)
    assert small_result.stats.injections == 4
    # Telemetry defaults off.
    assert small_result.telemetry is None


def test_old_return_shape_warns_but_works(small_result):
    with pytest.warns(DeprecationWarning, match="use the .stats field"):
        coverage = small_result.coverage_protected
    assert coverage == small_result.stats.coverage_protected
    with pytest.raises(AttributeError):
        small_result.definitely_not_an_attribute


def test_deprecation_shim_does_not_break_pickle(small_result):
    clone = pickle.loads(pickle.dumps(small_result))
    assert clone.stats == small_result.stats


def test_inject_accepts_prebuilt_config(bw, small_result):
    config = CampaignConfig(nthreads=4, injections=4, seed=2012,
                            output_globals=("result",))
    result = bw.inject(FaultType.BRANCH_FLIP, setup=figure1_setup(4),
                       config=config)
    assert result.stats == small_result.stats


def test_public_exports():
    for name in ("CampaignResult", "CampaignStats", "MonitorMode",
                 "Telemetry", "TelemetrySnapshot"):
        assert name in repro.__all__
        assert getattr(repro, name) is not None
