"""JSONL trace schema: validation, writer/reader roundtrip, CLI validator."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.telemetry import (
    TraceSchemaError,
    iter_trace,
    read_trace,
    sort_events,
    validate_event,
    validate_trace_file,
    write_trace,
)


def _events():
    return [
        {"kind": "run_start", "seq": 0, "inj": 1, "seed": 7, "nthreads": 4},
        {"kind": "run_end", "seq": 1, "inj": 1, "seed": 7,
         "status": "ok", "steps": 100, "violations": 0},
        {"kind": "campaign_start", "seq": 0, "inj": -1, "seed": 7,
         "fault": "branch_flip", "injections": 2, "nthreads": 4},
    ]


def test_validate_event_accepts_well_formed():
    for event in _events():
        validate_event(event)


@pytest.mark.parametrize("event, fragment", [
    ({"seq": 0}, "missing 'kind'"),
    ({"kind": "run_start"}, "missing 'seq'"),
    ({"kind": 3, "seq": 0}, "kind is not a string"),
    ({"kind": "run_start", "seq": "x"}, "seq is not an int"),
    ({"kind": "run_start", "seq": 0, "inj": "x"}, "inj is not an int"),
    ({"kind": "run_start", "seq": 0}, "run_start event missing nthreads"),
    ({"kind": "run_end", "seq": 0, "status": "ok"},
     "run_end event missing steps, violations"),
    ("not a dict", "not an object"),
])
def test_validate_event_rejects_malformed(event, fragment):
    with pytest.raises(TraceSchemaError, match=fragment):
        validate_event(event)


def test_unknown_kind_passes_universal_checks():
    validate_event({"kind": "custom_marker", "seq": 0})


def test_write_read_roundtrip_in_canonical_order(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    count = write_trace(path, _events())
    assert count == 3
    back = read_trace(path)
    assert back == sort_events(_events())
    assert [e["inj"] for e in back] == [-1, 1, 1]
    assert validate_trace_file(path) == 3


def test_validator_flags_bad_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "run_start", "seq": 0}\n')
    with pytest.raises(TraceSchemaError, match="event 0"):
        validate_trace_file(str(path))
    path.write_text("not json\n")
    with pytest.raises(TraceSchemaError, match="not valid JSON"):
        read_trace(str(path))


def test_iter_trace_is_lazy(tmp_path):
    # A malformed line deep in the file must not prevent reading the
    # events before it — proof the iterator consumes line by line
    # instead of slurping the whole file up front.
    path = tmp_path / "large.jsonl"
    with open(str(path), "w", encoding="utf-8") as handle:
        for seq in range(5000):
            handle.write('{"kind": "tick", "seq": %d, "inj": 0}\n' % seq)
        handle.write("THIS LINE IS NOT JSON\n")
    stream = iter_trace(str(path))
    assert iter(stream) is stream  # an iterator, not a list
    first = next(stream)
    assert first == {"kind": "tick", "seq": 0, "inj": 0}
    consumed = 1
    with pytest.raises(TraceSchemaError, match="5001: not valid JSON"):
        for _ in stream:
            consumed += 1
    assert consumed == 5000


def test_iter_trace_large_roundtrip(tmp_path):
    events = [{"kind": "tick", "seq": seq, "inj": seq % 7}
              for seq in range(20000)]
    path = str(tmp_path / "big.jsonl")
    assert write_trace(path, events) == 20000
    streamed = list(iter_trace(path))
    assert streamed == read_trace(path)
    assert len(streamed) == 20000
    assert validate_trace_file(path) == 20000


def test_iter_trace_skips_blank_lines(tmp_path):
    path = tmp_path / "gaps.jsonl"
    path.write_text('{"kind": "a", "seq": 0}\n\n\n{"kind": "b", "seq": 1}\n')
    assert [e["kind"] for e in iter_trace(str(path))] == ["a", "b"]


def test_module_cli_validator(tmp_path):
    good = str(tmp_path / "good.jsonl")
    write_trace(good, _events())
    proc = subprocess.run(
        [sys.executable, "-m", "repro.telemetry", good],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert "3 events, schema OK" in proc.stdout

    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"seq": 0}\n')
    proc = subprocess.run(
        [sys.executable, "-m", "repro.telemetry", str(bad)],
        capture_output=True, text=True)
    assert proc.returncode == 1
    assert "INVALID" in proc.stderr
