"""Tests for campaign orchestration and outcome/coverage accounting."""

import pytest

from repro.faults import (
    CampaignConfig,
    CampaignStats,
    FaultType,
    Outcome,
    run_campaign,
    run_false_positive_trial,
)
from repro.faults.campaign import quantize_signature
from repro.runtime import ParallelProgram
from tests.conftest import FIGURE_1, figure1_setup


@pytest.fixture(scope="module")
def program():
    return ParallelProgram(FIGURE_1, "fig1")


class TestCampaignStats:
    def make(self, outcomes_and_baselines):
        stats = CampaignStats(program="p", fault_type="t", nthreads=4)
        for outcome, baseline in outcomes_and_baselines:
            stats.note(outcome, baseline)
        return stats

    def test_coverage_formula(self):
        stats = self.make([
            (Outcome.DETECTED, Outcome.SDC),
            (Outcome.DETECTED, Outcome.SDC),
            (Outcome.SDC, Outcome.SDC),
            (Outcome.MASKED, Outcome.MASKED),
        ])
        assert stats.activated == 4
        assert stats.coverage_protected == pytest.approx(0.75)
        assert stats.coverage_original == pytest.approx(0.25)
        assert stats.detection_gain == pytest.approx(0.5)

    def test_not_activated_excluded(self):
        stats = self.make([
            (Outcome.NOT_ACTIVATED, Outcome.NOT_ACTIVATED),
            (Outcome.SDC, Outcome.SDC),
        ])
        assert stats.activated == 1
        assert stats.coverage_protected == 0.0

    def test_no_activations_is_full_coverage(self):
        stats = self.make([(Outcome.NOT_ACTIVATED, Outcome.NOT_ACTIVATED)])
        assert stats.coverage_protected == 1.0

    def test_crash_hang_count_as_covered(self):
        stats = self.make([
            (Outcome.CRASH, Outcome.CRASH),
            (Outcome.HANG, Outcome.HANG),
        ])
        assert stats.coverage_protected == 1.0


class TestQuantization:
    def test_zero_bits_is_identity(self):
        sig = ("ok", ((0, (1, 2)),), (("a", (100,)),))
        assert quantize_signature(sig, 0) == sig

    def test_ints_quantized(self):
        sig = (("a", (100, 101, 130)),)
        q = quantize_signature(sig, 5)
        assert q == (("a", (3, 3, 4)),)

    def test_bools_untouched(self):
        assert quantize_signature((True, False), 4) == (True, False)

    def test_floats_coarsened(self):
        (value,) = quantize_signature((33.0,), 5)
        assert value == 1  # round(33/32)


class TestCampaigns:
    def test_flip_campaign_statistics(self, program):
        config = CampaignConfig(nthreads=4, injections=25, seed=3,
                                output_globals=("result",))
        campaign = run_campaign(program, FaultType.BRANCH_FLIP, config,
                                setup=figure1_setup(4), keep_records=True)
        stats = campaign.stats
        assert stats.injections == 25
        assert stats.activated == 25  # deterministic schedules: all sites hit
        assert sum(stats.counts.values()) == 25
        assert stats.coverage_protected >= stats.coverage_original
        assert stats.counts.get(Outcome.DETECTED, 0) > 0
        assert len(campaign.records) == 25

    def test_condition_campaign_has_masked_outcomes(self, program):
        config = CampaignConfig(nthreads=4, injections=30, seed=3,
                                output_globals=("result",))
        campaign = run_campaign(program, FaultType.BRANCH_CONDITION, config,
                                setup=figure1_setup(4))
        assert campaign.stats.counts.get(Outcome.MASKED, 0) > 0

    def test_campaign_reproducible(self, program):
        config = CampaignConfig(nthreads=4, injections=15, seed=11,
                                output_globals=("result",))
        a = run_campaign(program, FaultType.BRANCH_FLIP, config,
                         setup=figure1_setup(4)).stats
        b = run_campaign(program, FaultType.BRANCH_FLIP, config,
                         setup=figure1_setup(4)).stats
        assert a.counts == b.counts

    def test_false_positive_trial(self, program):
        fp = run_false_positive_trial(program, 4, 15, 321,
                                      setup=figure1_setup(4))
        assert fp == 0

    def test_summary_row_shape(self, program):
        config = CampaignConfig(nthreads=4, injections=5, seed=1,
                                output_globals=("result",))
        stats = run_campaign(program, FaultType.BRANCH_FLIP, config,
                             setup=figure1_setup(4)).stats
        row = stats.summary_row()
        assert len(row) == len(CampaignStats.SUMMARY_HEADERS)
