"""Campaign determinism across ``jobs`` values — the tentpole contract:
``run_campaign(..., jobs=N)`` is bit-identical to the serial run for any
``N`` and any chunking, and the per-injection fault plans match
spec-for-spec."""

import pytest

from repro.faults import (
    CampaignConfig,
    FaultType,
    injection_seed,
    plan_injection,
    run_campaign,
    run_false_positive_trial,
)
from repro.runtime import ParallelProgram
from tests.conftest import FIGURE_1, figure1_setup


@pytest.fixture(scope="module")
def program():
    return ParallelProgram(FIGURE_1, "fig1")


CONFIG = CampaignConfig(nthreads=4, injections=16, seed=9,
                        output_globals=("result",))


class TestJobsDeterminism:
    @pytest.mark.parametrize("fault_type", list(FaultType))
    def test_jobs4_matches_serial(self, program, fault_type):
        serial = run_campaign(program, fault_type, CONFIG,
                              setup=figure1_setup(4), keep_records=True,
                              jobs=1)
        pooled = run_campaign(program, fault_type, CONFIG,
                              setup=figure1_setup(4), keep_records=True,
                              jobs=4)
        assert serial.stats == pooled.stats
        assert ([r.spec for r in serial.records]
                == [r.spec for r in pooled.records])
        assert ([r.outcome for r in serial.records]
                == [r.outcome for r in pooled.records])

    def test_partitioning_does_not_matter(self, program):
        """Different worker counts produce different chunkings; the
        statistics must not move."""
        stats = [run_campaign(program, FaultType.BRANCH_FLIP, CONFIG,
                              setup=figure1_setup(4), jobs=jobs).stats
                 for jobs in (2, 3)]
        assert stats[0] == stats[1]

    def test_plans_are_partition_independent(self, program):
        """The spec of injection i can be recomputed in isolation —
        exactly what each pool worker does."""
        serial = run_campaign(program, FaultType.BRANCH_FLIP, CONFIG,
                              setup=figure1_setup(4), keep_records=True,
                              jobs=1)
        golden = serial.golden
        for index, record in enumerate(serial.records):
            replanned = plan_injection(FaultType.BRANCH_FLIP,
                                       golden.branch_counts,
                                       CONFIG.seed, index)
            assert replanned == record.spec

    def test_progress_callback_reaches_total(self, program):
        seen = []
        run_campaign(program, FaultType.BRANCH_FLIP, CONFIG,
                     setup=figure1_setup(4), jobs=2,
                     progress=lambda done, total, secs:
                         seen.append((done, total)))
        assert seen and seen[-1][0] == CONFIG.injections
        assert all(total == CONFIG.injections for _, total in seen)

    def test_false_positive_trial_jobs_parity(self, program):
        serial = run_false_positive_trial(program, 4, 8, 321,
                                          setup=figure1_setup(4), jobs=1)
        pooled = run_false_positive_trial(program, 4, 8, 321,
                                          setup=figure1_setup(4), jobs=3)
        assert serial == pooled == 0


class TestSeedStability:
    def test_plans_stable_across_processes(self, program):
        """injection_seed is PYTHONHASHSEED-free, so a campaign's fault
        plan is a pure function of (seed, fault type, index) — this is
        what the old ``hash(fault_type.value)`` seeding violated."""
        first = [injection_seed(CONFIG.seed, FaultType.BRANCH_CONDITION, i)
                 for i in range(4)]
        second = [injection_seed(CONFIG.seed, FaultType.BRANCH_CONDITION, i)
                  for i in range(4)]
        assert first == second
        assert len(set(first)) == 4
