"""Tests for the fault models and the injecting hook."""

import random

import pytest

from repro.faults import FaultSpec, FaultType, InjectingHook, plan_fault
from repro.runtime import ParallelProgram
from tests.conftest import FIGURE_1, figure1_setup


@pytest.fixture(scope="module")
def program():
    return ParallelProgram(FIGURE_1, "fig1")


class TestPlanning:
    def test_plan_respects_counts(self):
        rng = random.Random(0)
        counts = {0: 10, 1: 5, 2: 0}
        for _ in range(50):
            spec = plan_fault(FaultType.BRANCH_FLIP, counts, rng)
            assert spec.thread_id in (0, 1)
            assert 1 <= spec.branch_index <= counts[spec.thread_id]

    def test_plan_with_no_branches(self):
        rng = random.Random(0)
        assert plan_fault(FaultType.BRANCH_FLIP, {0: 0}, rng) is None

    def test_describe(self):
        spec = FaultSpec(FaultType.BRANCH_CONDITION, 2, 17)
        assert "thread 2" in spec.describe()
        assert "17" in spec.describe()


class TestBranchFlip:
    def test_activation_at_exact_site(self, program):
        hook = InjectingHook(FaultSpec(FaultType.BRANCH_FLIP, 1, 3))
        result = program.run_protected(4, setup=figure1_setup(4),
                                       fault_hook=hook)
        assert hook.activated
        assert hook.flipped_branch
        assert result is not None

    def test_not_activated_beyond_execution(self, program):
        hook = InjectingHook(FaultSpec(FaultType.BRANCH_FLIP, 1, 10 ** 9))
        program.run_protected(4, setup=figure1_setup(4), fault_hook=hook)
        assert not hook.activated

    def test_fires_exactly_once(self, program):
        hook = InjectingHook(FaultSpec(FaultType.BRANCH_FLIP, 0, 2))
        golden = program.run_protected(4, setup=figure1_setup(4))
        faulty = program.run_protected(4, setup=figure1_setup(4),
                                       fault_hook=hook)
        # same dynamic branch population outside the single perturbation
        assert abs(sum(faulty.branch_counts.values())
                   - sum(golden.branch_counts.values())) <= golden.steps


class TestConditionFault:
    def test_corruption_persists_in_register(self, program):
        """The corrupted operand must influence execution after the
        branch — we detect this via divergence from the flip-only run."""
        spec = FaultSpec(FaultType.BRANCH_CONDITION, 2, 4, bit=62, rng_seed=5)
        hook = InjectingHook(spec)
        result = program.run_protected(4, setup=figure1_setup(4),
                                       fault_hook=hook)
        assert hook.activated
        assert "bit 62" in hook.detail or "boolean" in hook.detail
        assert result is not None

    def test_low_bit_may_not_flip_branch(self, program):
        """Paper: 'a fault ... that flips the least significant bit of the
        condition variable may not affect the comparison'."""
        flipped = []
        for seed in range(16):
            hook = InjectingHook(FaultSpec(
                FaultType.BRANCH_CONDITION, 0, 2, bit=0, rng_seed=seed))
            program.run_protected(4, setup=figure1_setup(4), fault_hook=hook)
            if hook.activated:
                flipped.append(hook.flipped_branch)
        assert flipped and not all(flipped)

    def test_high_bit_usually_flips_compare(self, program):
        hook = InjectingHook(FaultSpec(
            FaultType.BRANCH_CONDITION, 0, 2, bit=63, rng_seed=1))
        # A sign-bit flip in the loop bound can send the loop spinning
        # toward INT_MIN; bound the run so the hang is classified instead
        # of eating the default 20M-step budget.
        program.run_protected(4, setup=figure1_setup(4), fault_hook=hook,
                              max_steps=400_000)
        assert hook.activated


class TestDetectionEndToEnd:
    def test_tid_branch_flip_detected(self, program):
        """Flipping `procid == 0` on a second thread makes two takers —
        the paper's Section II-D example."""
        detections = 0
        for thread in range(4):
            # branch 1 is the first dynamic branch of each thread
            hook = InjectingHook(FaultSpec(FaultType.BRANCH_FLIP, thread, 1))
            result = program.run_protected(4, setup=figure1_setup(4),
                                           fault_hook=hook)
            if result.detected:
                detections += 1
        assert detections >= 3  # non-taker flips give two takers

    def test_shared_loop_flip_detected(self, program):
        # inject into the shared loop region (branches 2..25 are loop
        # iterations); a flip ends/extends exactly one thread's loop
        hook = InjectingHook(FaultSpec(FaultType.BRANCH_FLIP, 2, 10))
        result = program.run_protected(4, setup=figure1_setup(4),
                                       fault_hook=hook)
        assert result.detected
