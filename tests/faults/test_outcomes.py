"""Tests for outcome accounting helpers not covered by the campaign tests."""

from repro.faults import CampaignStats, Outcome


class TestRates:
    def test_rate_computation(self):
        stats = CampaignStats()
        stats.note(Outcome.DETECTED, Outcome.SDC)
        stats.note(Outcome.DETECTED, Outcome.SDC)
        stats.note(Outcome.MASKED, Outcome.MASKED)
        stats.note(Outcome.CRASH, Outcome.CRASH)
        assert stats.rate(Outcome.DETECTED) == 0.5
        assert stats.rate(Outcome.CRASH) == 0.25
        assert stats.rate(Outcome.HANG) == 0.0

    def test_rate_with_no_activations(self):
        stats = CampaignStats()
        assert stats.rate(Outcome.SDC) == 0.0

    def test_baseline_counts_tracked_separately(self):
        stats = CampaignStats()
        stats.note(Outcome.DETECTED, Outcome.SDC)
        assert stats.counts[Outcome.DETECTED] == 1
        assert stats.baseline_counts[Outcome.SDC] == 1
        assert Outcome.SDC not in stats.counts

    def test_outcome_values_are_stable(self):
        """Outcome strings appear in saved results; freeze them."""
        assert Outcome.SDC.value == "sdc"
        assert Outcome.DETECTED.value == "detected"
        assert Outcome.NOT_ACTIVATED.value == "not_activated"
