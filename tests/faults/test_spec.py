"""CampaignSpec: the one serializable description of a campaign.

The contract under test: a spec survives the wire (spec → canonical
JSON → spec) with byte-identical serialization and plan hash; running
a spec is bit-identical to the legacy kwarg call it replaces; and the
legacy surfaces still work but say so (``DeprecationWarning``).
"""

import json

import pytest

import repro
from repro.errors import SpecError
from repro.faults import (
    CampaignConfig,
    CampaignSpec,
    FaultType,
    run_campaign,
    spec_of_config,
)
from tests.conftest import FIGURE_1, figure1_setup
from tests.store.test_resume import record_view


def figure1_spec(**overrides):
    base = dict(fault="flip", injections=8, nthreads=4, seed=9,
                output_globals=("result",),
                scalars=(("nprocs", 4),),
                arrays=(("gp", tuple([5, 40, 10, 40] * 16)),))
    base.update(overrides)
    return CampaignSpec.build(FIGURE_1, name="figure1", **base)


class TestRoundTrip:
    def test_json_round_trip_is_byte_identical(self):
        spec = figure1_spec()
        text = spec.to_json()
        again = CampaignSpec.from_json(text)
        assert again == spec
        assert again.to_json() == text

    def test_round_trip_preserves_plan_hash(self):
        spec = figure1_spec()
        wire = json.loads(spec.to_json())
        again = CampaignSpec.from_dict(wire)
        assert again.plan_hash == spec.plan_hash
        assert again.plan_fingerprint() == spec.plan_fingerprint()

    def test_kernel_spec_round_trips(self):
        spec = CampaignSpec.for_kernel("radix", fault="condition",
                                       injections=5, nthreads=2)
        again = CampaignSpec.from_json(spec.to_json())
        assert again == spec
        assert again.is_kernel and again.kernel_name == "radix"

    def test_plan_hash_tracks_the_plan(self):
        spec = figure1_spec()
        assert spec.replace(seed=10).plan_hash != spec.plan_hash
        assert spec.replace(injections=9).plan_hash != spec.plan_hash
        # Journal/store/resume are run-site knobs, not plan inputs.
        assert spec.replace(journal="x.jsonl").plan_hash == spec.plan_hash
        assert spec.replace(resume=True).plan_hash == spec.plan_hash
        assert spec.replace(store="/tmp/s").plan_hash == spec.plan_hash


class TestValidation:
    def test_unknown_field_rejected(self):
        wire = json.loads(figure1_spec().to_json())
        wire["bogus"] = 1
        with pytest.raises(SpecError):
            CampaignSpec.from_dict(wire)

    def test_unknown_schema_rejected(self):
        wire = json.loads(figure1_spec().to_json())
        wire["schema"] = 999
        with pytest.raises(SpecError):
            CampaignSpec.from_dict(wire)

    def test_fault_aliases_normalize(self):
        flip = CampaignSpec.build(FIGURE_1, fault="branch_flip")
        assert flip.fault_type is FaultType.BRANCH_FLIP
        cond = CampaignSpec.build(FIGURE_1, fault="condition")
        assert cond.fault_type is FaultType.BRANCH_CONDITION
        assert flip.fault != cond.fault

    def test_bad_values_rejected(self):
        with pytest.raises(SpecError):
            CampaignSpec.build(FIGURE_1, fault="gamma-ray")
        with pytest.raises(SpecError):
            figure1_spec(injections=0)
        with pytest.raises(SpecError):
            figure1_spec(plan="clever")
        with pytest.raises(SpecError):
            CampaignSpec.for_kernel("no-such-kernel", fault="flip")


class TestExecutionIdentity:
    @pytest.fixture(scope="class")
    def spec(self):
        return figure1_spec()

    @pytest.fixture(scope="class")
    def legacy(self, spec):
        program = repro.runtime.ParallelProgram(FIGURE_1, "figure1")
        config = CampaignConfig(nthreads=4, injections=8, seed=9,
                                output_globals=("result",))
        with pytest.warns(DeprecationWarning):
            return run_campaign(program, FaultType.BRANCH_FLIP, config,
                                setup=figure1_setup(4), keep_records=True)

    def test_spec_run_matches_legacy_kwargs(self, spec, legacy):
        result = run_campaign(spec, keep_records=True)
        assert result.stats.counts == legacy.stats.counts
        assert ([record_view(r) for r in result.records]
                == [record_view(r) for r in legacy.records])

    def test_spec_of_config_matches_build(self, spec, legacy):
        program = repro.runtime.ParallelProgram(FIGURE_1, "figure1")
        config = CampaignConfig(nthreads=4, injections=8, seed=9,
                                output_globals=("result",))
        derived = spec_of_config(program, FaultType.BRANCH_FLIP, config)
        # Same plan fingerprint => a journal written by either resumes
        # under the other.
        assert derived.plan_hash == spec.plan_hash

    def test_legacy_positional_requires_config(self):
        program = repro.runtime.ParallelProgram(FIGURE_1, "figure1")
        with pytest.raises(TypeError):
            run_campaign(program, FaultType.BRANCH_FLIP)

    def test_spec_plus_kwargs_rejected(self, spec):
        with pytest.raises(TypeError):
            run_campaign(spec, FaultType.BRANCH_FLIP)


class TestBlockWatchSpec:
    @pytest.fixture(scope="class")
    def bw(self):
        return repro.BlockWatch(FIGURE_1, name="figure1")

    def test_spec_builder_inherits_program(self, bw):
        spec = bw.spec(fault="flip", injections=4,
                       output_globals=("result",))
        assert spec.name == "figure1"
        assert spec.fault_type is FaultType.BRANCH_FLIP

    def test_inject_spec_form(self, bw):
        spec = bw.spec(fault="flip", injections=4, seed=9,
                       output_globals=("result",))
        result = bw.inject(spec=spec, setup=figure1_setup(4))
        assert result.stats.injections == 4

    def test_inject_legacy_kwargs_warn_and_match(self, bw):
        spec = bw.spec(fault="flip", injections=4, seed=9,
                       output_globals=("result",))
        via_spec = bw.inject(spec=spec, setup=figure1_setup(4),
                             keep_records=True)
        with pytest.warns(DeprecationWarning):
            legacy = bw.inject(FaultType.BRANCH_FLIP, injections=4,
                               seed=9, output_globals=("result",),
                               setup=figure1_setup(4), keep_records=True)
        assert ([record_view(r) for r in via_spec.records]
                == [record_view(r) for r in legacy.records])

    def test_inject_rejects_foreign_spec(self, bw):
        other = CampaignSpec.for_kernel("radix", fault="flip",
                                        injections=4)
        with pytest.raises(SpecError):
            bw.inject(spec=other)

    def test_inject_rejects_spec_plus_fault_type(self, bw):
        spec = bw.spec(fault="flip", injections=4)
        with pytest.raises(TypeError):
            bw.inject(FaultType.BRANCH_FLIP, spec=spec)
