"""Tests for stratified (prediction-guided) campaign planning."""

import pytest

from repro.analysis import AnalysisConfig
from repro.faults import (
    CampaignConfig,
    FaultType,
    allocate_stratified,
    plan_stratified,
    record_site_streams,
    run_campaign,
)
from repro.lint.vuln import analyze_program
from repro.runtime import ParallelProgram
from tests.conftest import FIGURE_1, figure1_setup

NTHREADS = 4
BUDGET = 12

SPARSE = AnalysisConfig(elide_redundant_checks=True,
                        promote_none_to_partial=False)


@pytest.fixture(scope="module")
def program():
    # The sparse-check profile leaves some branches unchecked, so the
    # analyzer predicts a mix of classes instead of all-monitored.
    return ParallelProgram(FIGURE_1, "fig1sparse", analysis_config=SPARSE)


@pytest.fixture(scope="module")
def config():
    return CampaignConfig(nthreads=NTHREADS, injections=BUDGET, seed=77,
                          output_globals=("result",))


@pytest.fixture(scope="module")
def report(program):
    return analyze_program(program, output_globals=("result",))


class TestAllocate:
    def test_exact_proportional_split(self):
        assert allocate_stratified(10, {"a": 0.6, "b": 0.4}) \
            == {"a": 6, "b": 4}

    def test_largest_remainder_rounds_deterministically(self):
        out = allocate_stratified(10, {"a": 1.0, "b": 1.0, "c": 1.0})
        assert sum(out.values()) == 10
        assert out == {"a": 4, "b": 3, "c": 3}

    def test_every_stratum_gets_at_least_one(self):
        out = allocate_stratified(10, {"big": 0.99, "tiny": 0.01})
        assert out["tiny"] >= 1
        assert sum(out.values()) == 10

    def test_tight_budget_keeps_heaviest_strata(self):
        out = allocate_stratified(2, {"a": 0.5, "b": 0.3, "c": 0.2})
        assert sum(out.values()) == 2
        assert set(out) == {"a", "b"}

    def test_zero_weight_strata_dropped(self):
        assert "empty" not in allocate_stratified(5, {"a": 1.0, "empty": 0.0})

    def test_zero_budget(self):
        assert allocate_stratified(0, {"a": 1.0}) == {}


class TestPlanning:
    def test_streams_are_deterministic(self, program, config, report):
        setup = figure1_setup(NTHREADS)
        s1 = record_site_streams(program, config, setup=setup, report=report)
        s2 = record_site_streams(program, config, setup=setup, report=report)
        assert s1 == s2
        assert sorted(s1) == list(range(NTHREADS))
        known = {s.site_id for s in report.sites}
        assert all(site in known for stream in s1.values()
                   for site in stream)

    def test_plan_spends_exact_budget(self, program, config, report):
        streams = record_site_streams(program, config,
                                      setup=figure1_setup(NTHREADS),
                                      report=report)
        specs, meta = plan_stratified(report, streams,
                                      FaultType.BRANCH_FLIP, BUDGET, 77)
        assert len(specs) == BUDGET
        assert meta["budget"] == BUDGET
        assert sum(c["planned"] for c in meta["classes"].values()) == BUDGET
        assert sum(c["weight"] for c in meta["classes"].values()) \
            == pytest.approx(1.0)
        # every drawn site belongs to the stratum it was drawn for
        for cls, spec in specs:
            site = streams[spec.thread_id][spec.branch_index - 1]
            assert report.class_of(site, meta["model"]) == cls

    def test_plan_is_deterministic(self, program, config, report):
        streams = record_site_streams(program, config,
                                      setup=figure1_setup(NTHREADS),
                                      report=report)
        a = plan_stratified(report, streams, FaultType.BRANCH_FLIP,
                            BUDGET, 77)
        b = plan_stratified(report, streams, FaultType.BRANCH_FLIP,
                            BUDGET, 77)
        assert a == b


class TestStratifiedCampaign:
    def run(self, program, config, report, **kwargs):
        return run_campaign(program, FaultType.BRANCH_FLIP, config,
                            setup=figure1_setup(NTHREADS),
                            plan="stratified", vuln_report=report,
                            **kwargs)

    def test_meta_and_estimate_shape(self, program, config, report):
        result = self.run(program, config, report)
        assert result.stats.injections == BUDGET
        meta = result.stratified
        assert meta is not None
        est = meta["estimate"]
        assert est["injections"] == BUDGET
        assert 0.0 <= est["coverage_protected"] <= 1.0
        assert 0.0 <= est["coverage_original"] <= 1.0
        for cls in meta["classes"].values():
            assert sum(cls["outcomes"].values()) == cls["planned"]

    def test_every_planned_site_activates(self, program, config, report):
        # Sites come from a golden-equivalent recording with k <= n_j,
        # so the deterministic replay always reaches them.
        result = self.run(program, config, report, keep_records=True)
        assert all(r.outcome.value != "not-activated"
                   for r in result.records)
        assert len(result.records) == BUDGET

    def test_parallel_matches_serial(self, program, config, report):
        serial = self.run(program, config, report)
        fanned = self.run(program, config, report, jobs=2)
        assert serial.stats == fanned.stats
        assert serial.stratified == fanned.stratified

    def test_computes_report_when_not_given(self, program, config):
        result = run_campaign(program, FaultType.BRANCH_FLIP, config,
                              setup=figure1_setup(NTHREADS),
                              plan="stratified")
        assert result.stratified is not None

    def test_full_plan_leaves_stratified_unset(self, program, config):
        result = run_campaign(program, FaultType.BRANCH_FLIP, config,
                              setup=figure1_setup(NTHREADS))
        assert result.stratified is None


class TestRejections:
    def test_unknown_plan(self, program, config):
        with pytest.raises(ValueError, match="plan"):
            run_campaign(program, FaultType.BRANCH_FLIP, config,
                         plan="quota")

    def test_stratified_rejects_journal(self, program, config, tmp_path):
        with pytest.raises(ValueError):
            run_campaign(program, FaultType.BRANCH_FLIP, config,
                         plan="stratified",
                         journal=str(tmp_path / "j.jsonl"))

    def test_stratified_rejects_resume(self, program, config):
        with pytest.raises(ValueError):
            run_campaign(program, FaultType.BRANCH_FLIP, config,
                         plan="stratified", resume=True)

    def test_stratified_rejects_telemetry(self, program, config):
        with pytest.raises(ValueError):
            run_campaign(program, FaultType.BRANCH_FLIP, config,
                         plan="stratified", telemetry=True)
