"""Golden-value regression tests: the seed-derivation compatibility
contract.

Campaign journals written by :mod:`repro.store` identify work by
injection *index* and replan the missing indices on resume.  That is
only sound if ``injection_seed`` and ``plan_injection`` produce exactly
the same values forever: a journal written by an older build must be
resumable by a newer one without re-running (or mis-planning) the
injections it already recorded.

The values pinned here were produced by the derivation scheme
introduced with the parallel engine (blake2b-8 counter-mode over
``(base_seed, "injection", fault_type.value, index)``) and MUST NOT
change.  If one of these assertions fails, you have broken every
existing journal and artifact store: bump
:data:`repro.store.JOURNAL_SCHEMA` and document the migration instead
of updating the constants.
"""

from repro.faults import FaultType, injection_seed, plan_injection
from repro.parallel import derive_seed

BASE_SEED = 12345

#: injection_seed(12345, fault_type, 0..4) — frozen forever.
PINNED_SEEDS = {
    FaultType.BRANCH_FLIP: [
        3477022001218799078,
        2752610543125094116,
        5280828469709559974,
        8180491476710048268,
        12189632188643362099,
    ],
    FaultType.BRANCH_CONDITION: [
        3799584561068092394,
        7579638868438597179,
        17766684190570498283,
        1481929861693866168,
        17768326310570268066,
    ],
}

#: Dynamic branch counts of a fictional golden run; any stable mapping
#: works — what is pinned is the (thread, branch, rng_seed) choices the
#: planner derives from it.
BRANCH_COUNTS = {1: 40, 2: 37, 3: 41, 4: 36}

#: (fault type, index) -> (thread_id, branch_index, bit, rng_seed)
PINNED_PLANS = {
    (FaultType.BRANCH_FLIP, 0): (1, 40, None, 903117698),
    (FaultType.BRANCH_FLIP, 1): (1, 16, None, 1699650958),
    (FaultType.BRANCH_FLIP, 2): (3, 32, None, 693943913),
    (FaultType.BRANCH_FLIP, 99): (2, 33, None, 92527216),
    (FaultType.BRANCH_CONDITION, 0): (3, 5, None, 737511351),
    (FaultType.BRANCH_CONDITION, 1): (2, 36, None, 813976845),
    (FaultType.BRANCH_CONDITION, 2): (4, 10, None, 1600249000),
    (FaultType.BRANCH_CONDITION, 99): (4, 12, None, 1191826830),
}


class TestDeriveSeedContract:
    def test_base_derivations_pinned(self):
        assert derive_seed(0) == 7881388936124425723
        assert derive_seed(0, "a") == 12686407798700693291

    def test_injection_path_pinned(self):
        assert (derive_seed(BASE_SEED, "injection", "branch-flip", 0)
                == 3477022001218799078)


class TestInjectionSeedContract:
    def test_pinned_values(self):
        for fault_type, expected in PINNED_SEEDS.items():
            got = [injection_seed(BASE_SEED, fault_type, i)
                   for i in range(len(expected))]
            assert got == expected, (
                "injection_seed changed for %s — this breaks every "
                "existing campaign journal" % fault_type.value)

    def test_independent_of_partitioning(self):
        # Seeds are pure functions of (base, type, index): computing
        # index 3 alone equals computing it after 0..2.
        lone = injection_seed(BASE_SEED, FaultType.BRANCH_FLIP, 3)
        assert lone == PINNED_SEEDS[FaultType.BRANCH_FLIP][3]


class TestPlanInjectionContract:
    def test_pinned_plans(self):
        for (fault_type, index), expected in PINNED_PLANS.items():
            spec = plan_injection(fault_type, BRANCH_COUNTS,
                                  BASE_SEED, index)
            got = (spec.thread_id, spec.branch_index, spec.bit,
                   spec.rng_seed)
            assert got == expected, (
                "plan_injection changed for (%s, %d) — journals written "
                "by older stores would resume with a different fault "
                "plan" % (fault_type.value, index))
            assert spec.fault_type is fault_type
