"""Tests for the structural analyses: CFG, dominators, loops.

The dominator test cross-checks the fast CHK implementation against the
verifier's independent set-based computation on randomly generated CFGs
— a classic differential property test.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import CFG, DominatorTree, find_loops
from repro.errors import AnalysisError
from repro.frontend import compile_source
from repro.ir import Function, IRBuilder
from repro.ir.verifier import _dominator_sets


def diamond():
    """entry -> (left|right) -> merge"""
    f = Function("f")
    entry, left, right, merge = (f.add_block(n) for n in
                                 ("entry", "left", "right", "merge"))
    builder = IRBuilder(entry)
    builder.br(builder.cmp("lt", 1, 2), left, right)
    IRBuilder(left).jmp(merge)
    IRBuilder(right).jmp(merge)
    IRBuilder(merge).ret()
    return f


class TestCFG:
    def test_diamond_edges(self):
        f = diamond()
        cfg = CFG(f)
        merge = f.block_named("merge")
        assert {b.name for b in cfg.predecessors[merge]} == {"left", "right"}
        assert len(cfg.successors[f.entry]) == 2

    def test_reverse_postorder_starts_at_entry(self):
        f = diamond()
        order = CFG(f).reverse_postorder()
        assert order[0] is f.entry
        assert order[-1].name == "merge"

    def test_reachable_excludes_orphans(self):
        f = diamond()
        orphan = f.add_block("orphan")
        IRBuilder(orphan).ret()
        reachable = CFG(f).reachable()
        assert orphan not in reachable


class TestDominators:
    def test_diamond(self):
        f = diamond()
        dom = DominatorTree(f)
        entry = f.entry
        merge = f.block_named("merge")
        left = f.block_named("left")
        assert dom.dominates(entry, merge)
        assert not dom.dominates(left, merge)
        assert dom.dominates(merge, merge)
        assert dom.strictly_dominates(entry, left)
        assert not dom.strictly_dominates(entry, entry)

    def _random_function(self, rng: random.Random, nblocks: int) -> Function:
        f = Function("f")
        blocks = [f.add_block("b%d" % i) for i in range(nblocks)]
        for index, block in enumerate(blocks):
            builder = IRBuilder(block)
            # bias edges forward so most blocks are reachable
            choices = blocks[index + 1:] or [block]
            kind = rng.random()
            if kind < 0.3 or not blocks[index + 1:]:
                builder.ret()
            elif kind < 0.65:
                builder.jmp(rng.choice(choices))
            else:
                cond = builder.cmp("lt", 1, 2)
                builder.br(cond, rng.choice(choices), rng.choice(choices))
        return f

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=2, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_chk_matches_set_based_dominators(self, seed, nblocks):
        rng = random.Random(seed)
        f = self._random_function(rng, nblocks)
        cfg = CFG(f)
        tree = DominatorTree(f, cfg)
        strict_sets = _dominator_sets(f)
        reachable = set(id(b) for b in cfg.reachable())
        for a in f.blocks:
            for b in f.blocks:
                if id(a) not in reachable or id(b) not in reachable:
                    continue
                expected = (a is b) or (a in strict_sets[b])
                assert tree.dominates(a, b) == expected, (
                    "dominates(%s, %s)" % (a.name, b.name))


class TestLoops:
    def compile(self, body: str):
        module = compile_source("global int n = 10;\nfunc f() { %s }" % body)
        return module.function_named("f")

    def test_single_loop(self):
        f = self.compile(
            "local int i; for (i = 0; i < n; i = i + 1) { output(i); }")
        loops = find_loops(f)
        assert len(loops.loops) == 1
        loop = loops.loops[0]
        assert loop.depth == 1
        assert loop.header.name == "loop.header"
        assert loop.preheader is not None
        assert loop.preheader.name == "loop.preheader"

    def test_nested_loops_depths(self):
        f = self.compile(
            "local int i; local int j;"
            "for (i = 0; i < n; i = i + 1) {"
            "  for (j = 0; j < n; j = j + 1) { output(j); }"
            "}")
        loops = find_loops(f)
        assert len(loops.loops) == 2
        depths = sorted(loop.depth for loop in loops.loops)
        assert depths == [1, 2]
        inner = max(loops.loops, key=lambda l: l.depth)
        assert inner.parent is not None
        assert inner.parent.depth == 1
        assert inner.ancestors_outermost_first()[0].depth == 1

    def test_sequential_loops_are_siblings(self):
        f = self.compile(
            "local int i;"
            "for (i = 0; i < n; i = i + 1) { output(i); }"
            "for (i = 0; i < n; i = i + 1) { output(i); }")
        loops = find_loops(f)
        assert len(loops.loops) == 2
        assert all(loop.depth == 1 for loop in loops.loops)

    def test_block_to_loop_mapping(self):
        f = self.compile(
            "local int i; while (i < n) { if (i > 2) { output(i); } i = i + 1; }")
        loops = find_loops(f)
        body = f.block_named("if.then")
        assert loops.nesting_depth(body) == 1
        assert loops.nesting_depth(f.entry) == 0
        assert loops.loop_chain(f.entry) == []

    def test_loop_ids_offset(self):
        f = self.compile(
            "local int i; for (i = 0; i < n; i = i + 1) { output(i); }")
        loops = find_loops(f, first_loop_id=41)
        assert loops.loops[0].loop_id == 41

    def test_while_with_continue_single_header(self):
        f = self.compile(
            "local int i;"
            "while (i < n) { i = i + 1; if (i == 3) { continue; } output(i); }")
        loops = find_loops(f)
        assert len(loops.loops) == 1
        assert len(loops.loops[0].latches) >= 2  # continue adds a back edge

    def test_seven_deep_nesting(self):
        body = "local int i0;"
        open_loops = ""
        close = ""
        for depth in range(7):
            body += "local int i%d;" % (depth + 1) if depth else ""
        text = ""
        for depth in range(7):
            text += "for (i%d = 0; i%d < 2; i%d = i%d + 1) {" % ((depth,) * 4)
        text += "output(i6);"
        text += "}" * 7
        decls = "".join("local int i%d;" % d for d in range(7))
        f = self.compile(decls + text)
        loops = find_loops(f)
        assert max(loop.depth for loop in loops.loops) == 7
