"""Tests for race-aware refinement of the similarity analysis."""

from repro.analysis import Category
from repro.analysis.similarity import AnalysisConfig, analyze_module
from repro.frontend import compile_source
from repro.runtime import ParallelProgram
from repro.splash2 import kernel


def racy_source() -> str:
    with open("examples/racy/missing_lock.mc", "r", encoding="utf-8") as f:
        return f.read()


def branch_records(result):
    return [r for r in result.all_branches() if r.function.name == "slave"]


class TestRefinementConfig:
    def test_defaults(self):
        config = AnalysisConfig()
        assert config.racy_locations == ()
        assert config.race_refinement is True

    def test_racy_condition_demotes_branch(self):
        module = compile_source(racy_source())
        refined = analyze_module(
            module, AnalysisConfig(racy_locations=("counter",)))
        demoted = [r for r in branch_records(refined)
                   if r.skip_reason == "racy_condition"]
        assert demoted
        assert all(r.category is Category.NONE for r in demoted)
        assert all(r.check_kind is None for r in demoted)

    def test_without_racy_locations_branch_is_checked(self):
        module = compile_source(racy_source())
        plain = analyze_module(module, AnalysisConfig())
        assert not [r for r in branch_records(plain)
                    if r.skip_reason == "racy_condition"]

    def test_refinement_flag_gates_demotion(self):
        module = compile_source(racy_source())
        off = analyze_module(module, AnalysisConfig(
            racy_locations=("counter",), race_refinement=False))
        assert not [r for r in branch_records(off)
                    if r.skip_reason == "racy_condition"]

    def test_unrelated_racy_location_is_ignored(self):
        module = compile_source(racy_source())
        refined = analyze_module(
            module, AnalysisConfig(racy_locations=("elsewhere",)))
        assert not [r for r in branch_records(refined)
                    if r.skip_reason == "racy_condition"]


class TestProgramWiring:
    def test_program_attaches_lint_report(self):
        program = ParallelProgram(racy_source(), name="racy")
        assert program.lint_report is not None
        assert program.lint_report.racy_locations == ("counter",)

    def test_program_demotes_racy_branches(self):
        program = ParallelProgram(racy_source(), name="racy")
        demoted = [r for r in program.analysis.all_branches()
                   if r.skip_reason == "racy_condition"]
        assert demoted
        # the baseline analysis agrees, so golden comparisons stay aligned
        baseline = [r for r in program.baseline_analysis.all_branches()
                    if r.skip_reason == "racy_condition"]
        assert len(baseline) == len(demoted)

    def test_refinement_off_keeps_branches(self):
        program = ParallelProgram(
            racy_source(), name="racy",
            analysis_config=AnalysisConfig(race_refinement=False))
        assert program.lint_report is None
        assert not [r for r in program.analysis.all_branches()
                    if r.skip_reason == "racy_condition"]

    def test_caller_config_is_not_mutated(self):
        config = AnalysisConfig()
        ParallelProgram(racy_source(), name="racy", analysis_config=config)
        assert config.racy_locations == ()


class TestKernelsUnchanged:
    def test_radix_classification_identical_with_refinement(self):
        spec = kernel("radix")
        module = compile_source(spec.source, "radix")
        assert spec.entry == "slave"  # the analyzer's default entry
        on = analyze_module(module, AnalysisConfig())
        off = analyze_module(module, AnalysisConfig(race_refinement=False))
        key_on = [(r.branch.vid, r.category, r.check_kind, r.skip_reason)
                  for r in on.all_branches()]
        key_off = [(r.branch.vid, r.category, r.check_kind, r.skip_reason)
                   for r in off.all_branches()]
        assert key_on == key_off

    def test_radix_program_lints_clean(self):
        spec = kernel("radix")
        program = ParallelProgram(spec.source, name="radix",
                                  entry=spec.entry)
        assert program.lint_report is not None
        assert program.lint_report.errors == []
