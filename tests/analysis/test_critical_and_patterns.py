"""Tests for critical-section analysis and thread-id idiom recognition."""

from repro.analysis import CFG, CriticalSections, find_tid_counters
from repro.analysis.critical_sections import functions_only_called_under_lock
from repro.frontend import compile_source
from repro.ir import Branch

PRELUDE = """
global int g;
global int n = 4;
global lock l;
global lock l2;
"""


def sections_for(body: str, extra: str = "", verify: bool = True):
    module = compile_source(PRELUDE + extra + "\nfunc slave() { %s }" % body,
                            verify=verify)
    f = module.function_named("slave")
    return module, f, CriticalSections(f)


class TestCriticalSections:
    def test_straight_line_depths(self):
        _, f, cs = sections_for("g = 1; lock(l); g = 2; unlock(l); g = 3;")
        stores = [i for i in f.instructions() if i.opcode == "store"]
        assert [cs.depth_at(s) for s in stores] == [0, 1, 0]

    def test_nested_locks(self):
        _, f, cs = sections_for(
            "lock(l); lock(l2); g = 1; unlock(l2); g = 2; unlock(l); g = 3;")
        stores = [i for i in f.instructions() if i.opcode == "store"]
        assert [cs.depth_at(s) for s in stores] == [2, 1, 0]

    def test_branch_inside_critical_section(self):
        _, f, cs = sections_for(
            "lock(l); if (n > 2) { g = 1; } unlock(l);")
        branch = next(i for i in f.instructions() if isinstance(i, Branch))
        assert cs.in_critical_section(branch)

    def test_branch_after_unlock_is_outside(self):
        _, f, cs = sections_for(
            "lock(l); g = 1; unlock(l); if (n > 2) { g = 2; }")
        branch = next(i for i in f.instructions() if isinstance(i, Branch))
        assert not cs.in_critical_section(branch)

    def test_lock_spanning_branches_conservative(self):
        """If only one path locks, the join is treated as locked (max).
        The verifier rejects this unbalanced protocol, so compile
        unverified — the analysis must stay conservative on bad input."""
        _, f, cs = sections_for(
            "if (n > 2) { lock(l); } g = 1; unlock(l);", verify=False)
        store = next(i for i in f.instructions() if i.opcode == "store")
        assert cs.depth_at(store) == 1

    def test_functions_called_only_under_lock(self):
        extra = "func inner() { if (n > 1) { g = 5; } }"
        module, f, cs = sections_for(
            "lock(l); inner(); unlock(l);", extra=extra)
        serialized = functions_only_called_under_lock(
            module, {"slave", "inner"},
            {"slave": cs, "inner": CriticalSections(module.function_named("inner"))})
        assert serialized == {"inner"}

    def test_mixed_call_sites_not_serialized(self):
        extra = "func inner() { g = 5; }"
        module, f, cs = sections_for(
            "lock(l); inner(); unlock(l); inner();", extra=extra)
        serialized = functions_only_called_under_lock(
            module, {"slave", "inner"},
            {"slave": cs, "inner": CriticalSections(module.function_named("inner"))})
        assert serialized == set()

    def test_transitive_serialization(self):
        extra = ("func leaf() { g = 1; }\n"
                 "func mid() { leaf(); }")
        module, f, cs = sections_for("lock(l); mid(); unlock(l);", extra=extra)
        names = {"slave", "mid", "leaf"}
        sections = {name: CriticalSections(module.function_named(name))
                    for name in names}
        serialized = functions_only_called_under_lock(module, names, sections)
        assert serialized == {"mid", "leaf"}


class TestTidCounterIdiom:
    def analyze(self, body: str):
        module = compile_source(PRELUDE + "\nfunc slave() { %s }" % body)
        names = {"slave"}
        sections = {"slave": CriticalSections(module.function_named("slave"))}
        return find_tid_counters(module, names, sections)

    def test_classic_idiom(self):
        counters = self.analyze(
            "local int p; lock(l); p = g; g = g + 1; unlock(l); output(p);")
        assert counters == {"g"}

    def test_reversed_addition(self):
        counters = self.analyze(
            "local int p; lock(l); p = g; g = 1 + g; unlock(l); output(p);")
        assert counters == {"g"}

    def test_unlocked_access_disqualifies(self):
        counters = self.analyze(
            "local int p = g; lock(l); g = g + 1; unlock(l); output(p);")
        assert counters == set()

    def test_non_increment_store_disqualifies(self):
        counters = self.analyze(
            "lock(l); g = g * 2; unlock(l);")
        assert counters == set()

    def test_never_written_global_is_not_a_counter(self):
        counters = self.analyze(
            "local int p; lock(l); p = g; unlock(l); output(p);")
        assert counters == set()

    def test_variable_increment_disqualifies(self):
        counters = self.analyze(
            "lock(l); g = g + n; unlock(l);")
        assert counters == set()
