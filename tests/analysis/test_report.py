"""Tests for the census/report layer (Tables IV and V data)."""

from repro.analysis import (
    Category,
    category_statistics,
    count_branches,
    format_table,
    program_characteristics,
    source_loc,
)
from repro.analysis.similarity import AnalysisConfig, analyze_module
from repro.frontend import compile_source

SOURCE = """
global int n = 4;   // a comment
/* block
   comment */
global int data[8];

func helper() : int {
  if (n > 2) { return 1; }
  return 0;
}

func slave() {
  local int x = helper();
  if (x > 0) { output(x); }
}

func host_only() {
  if (n > 1) { output(n); }
}
"""


class TestSourceLoc:
    def test_counts_code_lines_only(self):
        assert source_loc("a = 1;\n\n// comment\nb = 2;") == 2

    def test_block_comments_excluded(self):
        assert source_loc("x;\n/* a\nb\nc */\ny;") == 2

    def test_code_after_block_comment_end(self):
        assert source_loc("/* c */ x = 1;") == 1


class TestCensus:
    def test_branch_counts(self):
        module = compile_source(SOURCE)
        assert count_branches(module) == 3
        assert count_branches(module, {"slave", "helper"}) == 2

    def test_program_characteristics(self):
        module = compile_source(SOURCE)
        ch = program_characteristics("demo", SOURCE, module, "slave")
        assert ch.total_branches == 3
        assert ch.parallel_branches == 2
        assert ch.total_loc > ch.parallel_loc > 0

    def test_category_statistics(self):
        module = compile_source(SOURCE)
        result = analyze_module(module, AnalysisConfig())
        stats = category_statistics("demo", result)
        assert stats.total == 2
        assert stats.count(Category.SHARED) == 1   # helper's branch
        assert stats.count(Category.PARTIAL) == 1  # x > 0 via return join
        assert stats.similar_fraction == 1.0
        assert stats.percent(Category.SHARED) == 50.0


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["name", "value"],
                            [["a", 1], ["longer", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5
