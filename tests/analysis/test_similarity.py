"""Tests for the similarity-inference fixpoint — the paper's core algorithm.

Covers the Figure 1 and Figure 2 examples, the phi rules, the multiple-
instances policy, mutability handling, the optimizations, and the check-
kind resolution (including the affine `uniform` refinement).
"""

import pytest

from repro.analysis import (
    AnalysisConfig,
    CHECK_PARTIAL,
    CHECK_SHARED,
    CHECK_TID_EQ,
    CHECK_TID_MONOTONE,
    CHECK_UNIFORM,
    Category,
    analyze_module,
    parallel_function_names,
)
from repro.errors import AnalysisError
from repro.frontend import compile_source

PRELUDE = """
global int id;
global int nprocs;
global int n = 64;
global int data[64];
global int out[64];
global lock l;
global barrier b;
"""


def analyze(body: str, extra_funcs: str = "", config: AnalysisConfig = None,
            prelude: str = PRELUDE):
    source = prelude + extra_funcs + "\nfunc slave() { %s }" % body
    module = compile_source(source)
    result = analyze_module(module, config or AnalysisConfig())
    return result


def branch_map(result, function="slave"):
    """block name -> BranchRecord for one function."""
    return {rec.branch.parent.name: rec
            for rec in result.per_function[function].branches}


class TestFigure1:
    """The paper's running example: one branch per category."""

    def test_all_four_categories(self):
        result = analyze("""
          local int private = 0;
          local int procid;
          lock(l);
          procid = id;
          id = id + 1;
          unlock(l);
          if (procid == 0) { output(42); }
          local int i;
          for (i = 0; i <= n - 1; i = i + 1) { private = private + 1; }
          if (data[procid] > n - 1) { private = 1; } else { private = -1; }
          if (private > 0) { output(procid); }
          barrier(b);
        """)
        categories = [rec.category for rec in
                      result.per_function["slave"].branches]
        assert categories == [Category.THREADID, Category.SHARED,
                              Category.NONE, Category.PARTIAL]

    def test_tid_counter_recognized(self):
        result = analyze("""
          local int procid;
          lock(l); procid = id; id = id + 1; unlock(l);
          if (procid == 0) { output(1); }
        """)
        assert result.tid_counters == {"id"}

    def test_fixpoint_converges_quickly(self):
        result = analyze("local int i; for (i = 0; i < n; i = i + 1) { output(i); }")
        assert result.iterations < 10  # the paper's empirical bound


class TestThreadIdSources:
    def test_tid_intrinsic(self):
        result = analyze("local int t = tid(); if (t == 0) { output(1); }")
        record = branch_map(result)["entry"]
        assert record.category is Category.THREADID
        assert record.check_kind == CHECK_TID_EQ
        assert record.eq_sense == "eq"

    def test_ne_sense(self):
        result = analyze("local int t = tid(); if (t != 0) { output(1); }")
        assert branch_map(result)["entry"].eq_sense == "ne"

    def test_counter_without_lock_not_a_tid_source(self):
        result = analyze("""
          local int procid = id;
          id = id + 1;
          if (procid == 0) { output(1); }
        """)
        assert result.tid_counters == set()
        # mutable global read outside a lock -> none
        assert branch_map(result)["entry"].category is Category.NONE


class TestSharedAndMutability:
    def test_immutable_global_is_shared(self):
        result = analyze("if (n > 10) { output(1); }")
        assert branch_map(result)["entry"].category is Category.SHARED

    def test_written_scalar_becomes_none(self):
        result = analyze("n = n + 1; if (n > 10) { output(1); }")
        assert branch_map(result)["entry"].category is Category.NONE

    def test_readonly_array_shared_index_is_shared(self):
        result = analyze("if (data[3] > 0) { output(1); }")
        assert branch_map(result)["entry"].category is Category.SHARED

    def test_readonly_array_tid_index_is_none(self):
        result = analyze(
            "local int t = tid(); if (data[t] > 0) { output(1); }")
        assert branch_map(result)["entry"].category is Category.NONE

    def test_written_array_is_none_even_with_shared_index(self):
        result = analyze(
            "data[0] = 5; if (data[3] > 0) { output(1); }")
        assert branch_map(result)["entry"].category is Category.NONE


class TestPhiRules:
    def test_ifelse_join_of_two_shared_is_partial(self):
        result = analyze("""
          local int x;
          if (n > 10) { x = 1; } else { x = 2; }
          if (x > 0) { output(1); }
        """)
        assert branch_map(result)["if.end"].category is Category.PARTIAL

    def test_loop_counter_stays_shared(self):
        result = analyze(
            "local int i; for (i = 0; i < n; i = i + 1) { output(i); }")
        assert branch_map(result)["loop.header"].category is Category.SHARED

    def test_tid_shared_mix_at_join_demoted(self):
        result = analyze("""
          local int x = 0;
          if (n > 10) { x = tid(); } else { x = 5; }
          if (x > 0) { output(1); }
        """)
        assert branch_map(result)["if.end"].category is Category.NONE


class TestMultipleInstances:
    FOO = """
    func foo(int arg) {
      local int i;
      for (i = 0; i < 5; i = i + 1) {
        if (i < arg) { output(i); }
      }
    }
    """

    def test_shared_args_keep_param_shared(self):
        result = analyze("foo(1); foo(2);", extra_funcs=self.FOO)
        for record in result.per_function["foo"].branches:
            assert record.category is Category.SHARED

    def test_mixed_arg_categories_demote(self):
        result = analyze("foo(1); foo(tid());", extra_funcs=self.FOO)
        inner = branch_map(result, "foo")["loop.body"]
        assert inner.category is Category.NONE

    def test_partial_and_shared_args_give_partial(self):
        body = """
          local int x;
          if (n > 10) { x = 1; } else { x = 2; }
          foo(x); foo(3);
        """
        result = analyze(body, extra_funcs=self.FOO)
        inner = branch_map(result, "foo")["loop.body"]
        assert inner.category is Category.PARTIAL

    def test_address_taken_params_are_none(self):
        extra = """
        global int fp;
        func shape(int v) : int {
          if (v > 0) { return 1; }
          return 0;
        }
        """
        result = analyze("fp = &shape; local int r = callptr(fp, n); output(r);",
                         extra_funcs=extra)
        inner = branch_map(result, "shape")["entry"]
        assert inner.category is Category.NONE

    def test_return_value_category(self):
        extra = """
        func pick() : int {
          if (n > 10) { return 1; }
          return 2;
        }
        """
        result = analyze("local int x = pick(); if (x > 0) { output(1); }",
                         extra_funcs=extra)
        # two distinct shared returns -> partial at the call
        assert branch_map(result)["entry"].category is Category.PARTIAL


class TestCheckKinds:
    def test_shared_check(self):
        result = analyze("if (n > 10) { output(1); }")
        assert branch_map(result)["entry"].check_kind == CHECK_SHARED

    def test_uniform_for_partitioned_loop(self):
        result = analyze("""
          local int t = tid();
          local int per = n / nprocs;
          local int first = t * per;
          local int i;
          for (i = first; i < first + per; i = i + 1) { out[i] = i; }
        """)
        record = branch_map(result)["loop.header"]
        assert record.category is Category.THREADID
        assert record.check_kind == CHECK_UNIFORM

    def test_monotone_for_ordered_tid_compare(self):
        result = analyze(
            "local int t = tid(); if (t < n / 2) { output(1); }")
        record = branch_map(result)["entry"]
        assert record.check_kind == CHECK_TID_MONOTONE
        assert record.monotone_dir == "low"

    def test_monotone_direction_flips_with_operator(self):
        result = analyze(
            "local int t = tid(); if (t > n / 2) { output(1); }")
        assert branch_map(result)["entry"].monotone_dir == "high"

    def test_eq_without_injectivity_falls_back_to_partial(self):
        # t % 2 is not provably injective in tid
        result = analyze(
            "local int t = tid(); if (t % 2 == 0) { output(1); }")
        record = branch_map(result)["entry"]
        assert record.category is Category.THREADID
        assert record.check_kind == CHECK_PARTIAL

    def test_affine_eq_is_tid_eq(self):
        result = analyze(
            "local int t = tid(); if (t * 3 + 1 == n) { output(1); }")
        assert branch_map(result)["entry"].check_kind == CHECK_TID_EQ


class TestOptimizations:
    def test_none_promoted_to_partial_by_default(self):
        result = analyze(
            "local int t = tid(); if (data[t] > 0) { output(1); }")
        record = branch_map(result)["entry"]
        assert record.category is Category.NONE
        assert record.check_kind == CHECK_PARTIAL
        assert record.promoted

    def test_promotion_can_be_disabled(self):
        result = analyze(
            "local int t = tid(); if (data[t] > 0) { output(1); }",
            config=AnalysisConfig(promote_none_to_partial=False))
        record = branch_map(result)["entry"]
        assert record.check_kind is None
        assert record.skip_reason == "none_category"

    def test_critical_section_branches_not_checked(self):
        result = analyze("""
          lock(l);
          if (n > 10) { output(1); }
          unlock(l);
        """)
        record = branch_map(result)["entry"]
        assert record.check_kind is None
        assert record.skip_reason == "critical_section"

    def test_critical_section_elision_can_be_disabled(self):
        result = analyze(
            "lock(l); if (n > 10) { output(1); } unlock(l);",
            config=AnalysisConfig(elide_critical_sections=False))
        assert branch_map(result)["entry"].check_kind == CHECK_SHARED

    def test_redundant_check_elision(self):
        body = """
          local int mode;
          if (n > 10) { mode = 1; } else { mode = 2; }
          if (mode > 0) { output(1); }
          if (mode < 3) { output(2); }
          if (mode * 2 > 1) { output(3); }
        """
        default = analyze(body)
        elided = analyze(body, config=AnalysisConfig(
            elide_redundant_checks=True))
        default_checked = len(default.checked_branches())
        elided_checked = len(elided.checked_branches())
        # the three mode-only branches collapse to one check
        assert default_checked - elided_checked == 2
        redundant = [r for r in elided.all_branches()
                     if r.skip_reason == "redundant"]
        assert len(redundant) == 2

    def test_elision_respects_loop_context(self):
        body = """
          local int mode;
          if (n > 10) { mode = 1; } else { mode = 2; }
          if (mode > 0) { output(1); }
          local int i;
          for (i = 0; i < 4; i = i + 1) {
            if (mode > 1) { output(2); }
          }
        """
        elided = analyze(body, config=AnalysisConfig(
            elide_redundant_checks=True))
        # different loop chains: both mode branches stay checked
        redundant = [r for r in elided.all_branches()
                     if r.skip_reason == "redundant"]
        assert redundant == []

    def test_nesting_cutoff(self):
        decls = "".join("local int i%d;" % d for d in range(7))
        loops = "".join(
            "for (i%d = 0; i%d < 2; i%d = i%d + 1) {" % ((d,) * 4)
            for d in range(7))
        body = decls + loops + "if (n > 10) { output(1); }" + "}" * 7
        result = analyze(body, config=AnalysisConfig(max_loop_nesting=6))
        records = result.per_function["slave"].branches
        deep = [r for r in records if r.nesting_depth == 7]
        assert deep and all(r.skip_reason == "nesting" for r in deep)
        shallow = [r for r in records if 0 < r.nesting_depth <= 6]
        assert shallow and all(r.check_kind is not None for r in shallow)


class TestParallelRegion:
    def test_reachable_functions(self):
        source = PRELUDE + """
        func helper() { output(1); }
        func unused() { output(2); }
        func slave() { helper(); }
        """
        module = compile_source(source)
        names = parallel_function_names(module, "slave")
        assert names == {"slave", "helper"}

    def test_address_taken_included(self):
        source = PRELUDE + """
        global int fp;
        func pointee() { output(1); }
        func slave() { fp = &pointee; }
        """
        module = compile_source(source)
        assert "pointee" in parallel_function_names(module, "slave")

    def test_missing_entry_raises(self):
        module = compile_source(PRELUDE + "func slave() { }")
        with pytest.raises(AnalysisError):
            parallel_function_names(module, "nonexistent")
