"""Tests for the Table II lattice — including mechanical verification of
the properties the paper's termination argument relies on."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import Category, TABLE_II, fold_operands, propagate, rank

ALL = list(Category)
categories = st.sampled_from(ALL)


class TestTableII:
    """Spot-check every distinctive entry of the paper's Table II."""

    def test_na_row_and_column(self):
        for c in ALL:
            assert propagate(Category.NA, c) is c  # NA row copies operand
            assert propagate(c, Category.NA) is Category.NA  # NA operand resets

    def test_shared_row(self):
        assert propagate(Category.SHARED, Category.SHARED) is Category.SHARED
        assert propagate(Category.SHARED, Category.THREADID) is Category.THREADID
        assert propagate(Category.SHARED, Category.PARTIAL) is Category.PARTIAL
        assert propagate(Category.SHARED, Category.NONE) is Category.NONE

    def test_threadid_row(self):
        assert propagate(Category.THREADID, Category.SHARED) is Category.THREADID
        assert propagate(Category.THREADID, Category.THREADID) is Category.THREADID
        # tid + partial has no statable similarity:
        assert propagate(Category.THREADID, Category.PARTIAL) is Category.NONE
        assert propagate(Category.THREADID, Category.NONE) is Category.NONE

    def test_partial_row(self):
        assert propagate(Category.PARTIAL, Category.SHARED) is Category.PARTIAL
        assert propagate(Category.PARTIAL, Category.THREADID) is Category.NONE
        assert propagate(Category.PARTIAL, Category.PARTIAL) is Category.PARTIAL

    def test_none_absorbs(self):
        for c in ALL:
            if c is Category.NA:
                continue
            assert propagate(Category.NONE, c) is Category.NONE

    def test_table_is_total(self):
        for row in ALL:
            for col in ALL:
                assert TABLE_II[row][col] in ALL


class TestProperties:
    """Property-based checks of the lattice algebra."""

    @given(categories, categories)
    def test_propagation_never_decreases_rank(self, current, operand):
        """Monotonic flow is the paper's termination argument: once an
        operand is classified, folding it in can only move the result up
        (or keep it) in the information-loss order."""
        if operand is Category.NA:
            return  # NA operands abort the fold instead
        result = propagate(current, operand)
        assert rank(result) >= rank(current) or current is Category.NA

    @given(categories, categories)
    def test_none_is_absorbing(self, current, operand):
        if operand is Category.NONE and current is not Category.NA:
            assert propagate(current, operand) is Category.NONE

    @given(st.lists(categories, min_size=1, max_size=6))
    def test_fold_is_order_insensitive_about_none(self, operands):
        """If any operand is NONE (and no NA aborts), the fold is NONE."""
        result = fold_operands(operands)
        if Category.NA in operands:
            assert result is None
        elif Category.NONE in operands:
            assert result is Category.NONE

    @given(st.lists(categories.filter(lambda c: c is not Category.NA),
                    min_size=1, max_size=6))
    def test_fold_permutation_invariant(self, operands):
        """The fold must not depend on operand order — the paper applies
        the same table for binary and ternary instructions by folding
        operands one at a time."""
        import itertools
        baseline = fold_operands(operands)
        for permuted in itertools.islice(itertools.permutations(operands), 12):
            assert fold_operands(list(permuted)) is baseline

    @given(st.lists(categories.filter(lambda c: c is not Category.NA),
                    min_size=1, max_size=5))
    def test_fold_idempotent_under_duplication(self, operands):
        assert fold_operands(operands) is fold_operands(operands + operands)


class TestFoldOperands:
    def test_na_aborts(self):
        assert fold_operands([Category.SHARED, Category.NA]) is None

    def test_paper_figure1_examples(self):
        # branch 1: procid (threadID) == 0 (shared)
        assert fold_operands([Category.THREADID, Category.SHARED]) is Category.THREADID
        # branch 2: i (shared) <= im-1 (shared)
        assert fold_operands([Category.SHARED, Category.SHARED]) is Category.SHARED
        # branch 3: gp[procid] (none) > im-1 (shared)
        assert fold_operands([Category.NONE, Category.SHARED]) is Category.NONE
        # branch 4: private (partial) > 0 (shared)
        assert fold_operands([Category.PARTIAL, Category.SHARED]) is Category.PARTIAL

    def test_checkable_predicate(self):
        assert Category.SHARED.is_checkable
        assert Category.THREADID.is_checkable
        assert Category.PARTIAL.is_checkable
        assert not Category.NONE.is_checkable
        assert not Category.NA.is_checkable
