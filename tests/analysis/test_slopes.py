"""Tests for the affine-in-tid coefficient inference (the `uniform`
refinement machinery), including the symbolic-coefficient algebra."""

from repro.analysis import (
    AnalysisConfig,
    CHECK_PARTIAL,
    CHECK_TID_EQ,
    CHECK_TID_MONOTONE,
    CHECK_UNIFORM,
    analyze_module,
)
from repro.analysis.similarity import _slope_add, _slope_mul_shared, _slope_neg
from repro.frontend import compile_source
from repro.ir import Constant

PRELUDE = """
global int nprocs;
global int n = 64;
global int out[64];
"""


def classify(body: str):
    module = compile_source(PRELUDE + "\nfunc slave() { %s }" % body)
    result = analyze_module(module, AnalysisConfig())
    return {rec.branch.parent.name: rec
            for rec in result.per_function["slave"].branches}


class TestSlopeAlgebra:
    def test_numeric_arithmetic(self):
        assert _slope_add(1, 2) == 3
        assert _slope_neg(5) == -5
        assert _slope_add(None, 1) is None

    @staticmethod
    def _shared_value():
        """A non-constant shared SSA value (e.g. a load result)."""
        from repro.ir import Argument, INT
        return Argument("s", INT, 0)

    def test_symbolic_equality_is_structural(self):
        shared_value = self._shared_value()
        a = _slope_mul_shared(1, shared_value)
        b = _slope_mul_shared(1, shared_value)
        assert a == b
        other = _slope_mul_shared(1, self._shared_value())
        assert a != other  # different SSA identity -> conservative

    def test_addition_identity_and_symbolic(self):
        x = _slope_mul_shared(1, self._shared_value())
        assert _slope_add(x, 0) == x
        assert _slope_add(0, x) == x
        assert _slope_add(x, 2) == _slope_add(x, 2)

    def test_double_negation_collapses(self):
        x = _slope_mul_shared(1, self._shared_value())
        assert _slope_neg(_slope_neg(x)) == x

    def test_zero_annihilates_multiplication(self):
        assert _slope_mul_shared(0, self._shared_value()) == 0

    def test_constant_factor_stays_numeric(self):
        assert _slope_mul_shared(2, Constant(3)) == 6
        assert _slope_mul_shared(2, Constant(-1)) == -2


class TestUniformDetection:
    def test_constant_partition(self):
        records = classify("""
          local int t = tid();
          local int first = t * 8;
          local int i;
          for (i = first; i < first + 8; i = i + 1) { out[i %% 64] = i; }
        """.replace("%%", "%"))
        assert records["loop.header"].check_kind == CHECK_UNIFORM

    def test_runtime_sized_partition(self):
        """The radix pattern: per = n / nprocs is not a compile-time
        constant, so the coefficient is symbolic — equality still holds."""
        records = classify("""
          local int t = tid();
          local int per = n / nprocs;
          local int first = t * per;
          local int last = first + per;
          local int i;
          for (i = first; i < last; i = i + 1) { out[i %% 64] = i; }
        """.replace("%%", "%"))
        assert records["loop.header"].check_kind == CHECK_UNIFORM

    def test_tid_cancellation_in_subtraction(self):
        records = classify("""
          local int t = tid();
          if (t * 2 + 5 < t * 2 + n) { output(1); }
        """)
        assert records["entry"].check_kind == CHECK_UNIFORM

    def test_different_coefficients_not_uniform(self):
        records = classify("""
          local int t = tid();
          if (t * 2 < t + n) { output(1); }
        """)
        assert records["entry"].check_kind == CHECK_TID_MONOTONE

    def test_separate_loads_break_symbolic_equality(self):
        """Reloading nprocs yields a different SSA value: conservatively
        not uniform (falls back to the still-sound monotone check)."""
        records = classify("""
          local int t = tid();
          local int a = t * (n / nprocs);
          local int b = t * (n / nprocs);
          if (a < b + 1) { output(1); }
        """)
        assert records["entry"].check_kind in (CHECK_TID_MONOTONE,
                                               CHECK_PARTIAL)

    def test_modulo_kills_the_affine_proof(self):
        records = classify("""
          local int t = tid();
          if (t %% 4 < t %% 4 + 1) { output(1); }
        """.replace("%%", "%"))
        assert records["entry"].check_kind != CHECK_UNIFORM


class TestEqInjectivity:
    def test_slope_difference_drives_tid_eq(self):
        records = classify(
            "local int t = tid(); if (t * 2 == t + n) { output(1); }")
        # lhs slope 2, rhs slope 1: difference 1 != 0 -> injective
        assert records["entry"].check_kind == CHECK_TID_EQ

    def test_equal_slopes_eq_is_uniform(self):
        records = classify(
            "local int t = tid(); if (t + 1 == t + n) { output(1); }")
        assert records["entry"].check_kind == CHECK_UNIFORM

    def test_symbolic_slope_eq_not_provably_injective(self):
        records = classify("""
          local int t = tid();
          local int per = n / nprocs;
          if (t * per == n) { output(1); }
        """)
        # per could be 0 at runtime for all the analysis knows
        assert records["entry"].check_kind == CHECK_PARTIAL

    def test_negated_tid_still_injective(self):
        records = classify(
            "local int t = tid(); if (0 - t == n) { output(1); }")
        assert records["entry"].check_kind == CHECK_TID_EQ
