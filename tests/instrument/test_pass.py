"""Tests for the instrumentation pass."""

import pytest

from repro.analysis import AnalysisConfig, analyze_module
from repro.errors import InstrumentationError
from repro.frontend import compile_source
from repro.instrument import instrument_module
from repro.ir import (
    Branch,
    Call,
    EnterLoop,
    LoopTick,
    SendBranchCondition,
    verify_module,
)

SOURCE = """
global int n = 8;
global int data[16];
global barrier b;

func helper(int k) : int {
  if (k > 2) { return 1; }
  return 0;
}

func slave() {
  local int t = tid();
  local int i;
  for (i = 0; i < n; i = i + 1) {
    if (i + t > 3) { data[t] = i; }
    data[t] = data[t] + helper(i);
  }
  barrier(b);
}
"""


def instrumented():
    module = compile_source(SOURCE)
    analysis = analyze_module(module, AnalysisConfig())
    metadata = instrument_module(module, analysis)
    return module, analysis, metadata


class TestInstrumentation:
    def test_module_still_verifies(self):
        module, _, _ = instrumented()
        verify_module(module)

    def test_every_checked_branch_gets_send_and_tag(self):
        module, analysis, metadata = instrumented()
        checked = analysis.checked_branches()
        assert len(metadata.branches) == len(checked)
        for record in checked:
            branch = record.branch
            assert branch.bw_info is not None
            block = branch.parent
            send = block.instructions[-2]
            assert isinstance(send, SendBranchCondition)
            assert send.info is branch.bw_info
            assert send.static_id == branch.bw_info.static_id

    def test_unchecked_branches_untouched(self):
        module, analysis, _ = instrumented()
        for record in analysis.all_branches():
            if record.check_kind is None:
                assert record.branch.bw_info is None

    def test_static_ids_dense_and_unique(self):
        _, _, metadata = instrumented()
        ids = sorted(metadata.branches)
        assert ids == list(range(len(ids)))

    def test_loops_with_checked_branches_get_counters(self):
        module, analysis, metadata = instrumented()
        slave = module.function_named("slave")
        preheader = slave.block_named("loop.preheader")
        header = slave.block_named("loop.header")
        enters = [i for i in preheader.instructions if isinstance(i, EnterLoop)]
        ticks = [i for i in header.instructions if isinstance(i, LoopTick)]
        assert len(enters) == 1 and len(ticks) == 1
        assert enters[0].loop_id == ticks[0].loop_id
        assert metadata.instrumented_loops >= 1

    def test_enclosing_loop_ids_recorded(self):
        module, _, metadata = instrumented()
        slave = module.function_named("slave")
        inner_if = slave.block_named("loop.body").terminator
        assert isinstance(inner_if, Branch)
        assert len(inner_if.bw_info.enclosing_loop_ids) == 1

    def test_callsite_ids_assigned(self):
        module, _, metadata = instrumented()
        calls = [i for f in module.function_table
                 for i in f.instructions() if isinstance(i, Call)]
        ids = [c.callsite_id for c in calls]
        assert all(i >= 0 for i in ids)
        assert len(set(ids)) == len(ids)
        assert metadata.call_sites == len(ids)

    def test_double_instrumentation_rejected(self):
        module = compile_source(SOURCE)
        analysis = analyze_module(module, AnalysisConfig())
        instrument_module(module, analysis)
        with pytest.raises(InstrumentationError, match="already"):
            instrument_module(module, analysis)

    def test_foreign_analysis_rejected(self):
        module_a = compile_source(SOURCE)
        module_b = compile_source(SOURCE)
        analysis_a = analyze_module(module_a, AnalysisConfig())
        with pytest.raises(InstrumentationError, match="another module"):
            instrument_module(module_b, analysis_a)

    def test_metadata_lookup(self):
        _, _, metadata = instrumented()
        info = metadata.info(0)
        assert info is not None and info.static_id == 0
        assert metadata.info(10_000) is None
