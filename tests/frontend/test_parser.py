"""Tests for the MiniC parser."""

import pytest

from repro.errors import ParseError
from repro.frontend import parse
from repro.frontend import ast_nodes as ast


def parse_body(stmts: str):
    program = parse("func f() { %s }" % stmts)
    return program.functions[0].body


def parse_expr(expr: str):
    body = parse_body("x = %s ;" % expr)
    return body[0].value


class TestGlobals:
    def test_scalar_with_init(self):
        g = parse("global int n = 42;").globals[0]
        assert (g.type_name, g.name, g.init) == ("int", "n", 42)

    def test_negative_init(self):
        assert parse("global int n = -3;").globals[0].init == -3

    def test_float_global(self):
        g = parse("global float pi = 3.5;").globals[0]
        assert g.init == 3.5

    def test_array(self):
        g = parse("global int a[64];").globals[0]
        assert g.array_length == 64

    def test_sync_objects(self):
        program = parse("global lock l; global barrier b;")
        assert program.globals[0].type_name == "lock"
        assert program.globals[1].type_name == "barrier"


class TestFunctions:
    def test_params_and_return(self):
        f = parse("func f(int a, float b) : int { return 1; }").functions[0]
        assert [(p.type_name, p.name) for p in f.params] == [
            ("int", "a"), ("float", "b")]
        assert f.return_type == "int"

    def test_void_function(self):
        f = parse("func f() { }").functions[0]
        assert f.return_type is None

    def test_line_span(self):
        f = parse("func f() {\n  output(1);\n}").functions[0]
        assert f.line == 1 and f.end_line == 3


class TestStatements:
    def test_local_decl(self):
        stmt = parse_body("local int x = 5;")[0]
        assert isinstance(stmt, ast.LocalDecl)
        assert stmt.name == "x"

    def test_assignment_forms(self):
        scalar, array = parse_body("x = 1; a[2] = 3;")
        assert isinstance(scalar, ast.Assign) and scalar.index is None
        assert isinstance(array, ast.Assign) and array.index is not None

    def test_if_else_chain(self):
        stmt = parse_body(
            "if (x > 0) { y = 1; } else if (x < 0) { y = 2; } else { y = 3; }")[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_body[0], ast.If)
        assert stmt.else_body[0].else_body

    def test_while(self):
        stmt = parse_body("while (x < 10) { x = x + 1; }")[0]
        assert isinstance(stmt, ast.While)

    def test_for_full(self):
        stmt = parse_body("for (i = 0; i < 10; i = i + 1) { }")[0]
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None and stmt.update is not None

    def test_for_with_local_init(self):
        stmt = parse_body("for (local int i = 0; i < 10; i = i + 1) { }")[0]
        assert isinstance(stmt.init, ast.LocalDecl)

    def test_for_empty_clauses(self):
        stmt = parse_body("for (;;) { break; }")[0]
        assert stmt.init is None and stmt.cond is None and stmt.update is None

    def test_break_continue_return(self):
        body = parse_body(
            "while (true) { break; continue; } return 1;")
        assert isinstance(body[0].body[0], ast.Break)
        assert isinstance(body[0].body[1], ast.Continue)
        assert isinstance(body[1], ast.Return)

    def test_sync_statements(self):
        body = parse_body("lock(l); unlock(l); barrier(b);")
        assert isinstance(body[0], ast.LockStmt)
        assert isinstance(body[1], ast.UnlockStmt)
        assert isinstance(body[2], ast.BarrierStmt)

    def test_output(self):
        stmt = parse_body("output(42);")[0]
        assert isinstance(stmt, ast.OutputStmt)

    def test_bare_block(self):
        stmt = parse_body("{ x = 1; }")[0]
        assert isinstance(stmt, ast.BlockStmt)
        assert isinstance(stmt.body[0], ast.Assign)

    def test_call_statement(self):
        stmt = parse_body("foo(1, 2);")[0]
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.CallExpr)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_precedence_cmp_over_and(self):
        expr = parse_expr("a < b && c > d")
        assert expr.op == "&&"
        assert expr.lhs.op == "<"

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.lhs.op == "+"

    def test_unary(self):
        expr = parse_expr("-x")
        assert isinstance(expr, ast.UnaryExpr) and expr.op == "-"
        expr = parse_expr("!flag")
        assert expr.op == "!"

    def test_builtins(self):
        assert parse_expr("tid()").name == "tid"
        assert parse_expr("min(a, b)").name == "min"
        assert parse_expr("float(x)").name == "float"

    def test_funcref_and_callptr(self):
        expr = parse_expr("&foo")
        assert isinstance(expr, ast.FuncRefExpr) and expr.name == "foo"
        expr = parse_expr("callptr(fp, 1, 2)")
        assert isinstance(expr, ast.CallPtrExpr)
        assert len(expr.args) == 2

    def test_index_expression(self):
        expr = parse_expr("a[i + 1]")
        assert isinstance(expr, ast.IndexExpr)

    def test_shift_precedence(self):
        expr = parse_expr("1 << 2 + 3")
        assert expr.op == "<<"
        assert expr.rhs.op == "+"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("func f() { x = 1 }")

    def test_unterminated_block(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse("func f() { x = 1;")

    def test_garbage_toplevel(self):
        with pytest.raises(ParseError, match="global"):
            parse("int x;")

    def test_bad_expression(self):
        with pytest.raises(ParseError):
            parse("func f() { x = ; }")

    def test_error_carries_line(self):
        with pytest.raises(ParseError) as info:
            parse("func f() {\n  x = ;\n}")
        assert info.value.line == 2
