"""Tests for the MiniC tokenizer."""

import pytest

from repro.errors import LexError
from repro.frontend import tokenize


def kinds_values(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != "eof"]


class TestBasics:
    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "eof"

    def test_keywords_vs_names(self):
        result = kinds_values("global int foo")
        assert result == [("keyword", "global"), ("keyword", "int"),
                          ("name", "foo")]

    def test_underscore_names(self):
        assert kinds_values("_x x_1")[0] == ("name", "_x")

    def test_integers(self):
        assert kinds_values("42")[0] == ("int", 42)
        assert kinds_values("0")[0] == ("int", 0)

    def test_floats(self):
        assert kinds_values("3.5")[0] == ("float", 3.5)
        assert kinds_values("1e3")[0] == ("float", 1000.0)
        assert kinds_values("2.5e-1")[0] == ("float", 0.25)
        assert kinds_values(".5")[0] == ("float", 0.5)

    def test_malformed_exponent(self):
        with pytest.raises(LexError):
            tokenize("1e+")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestOperators:
    def test_maximal_munch(self):
        ops = [v for k, v in kinds_values("a<=b==c&&d<<e") if k == "op"]
        assert ops == ["<=", "==", "&&", "<<"]

    def test_all_singles(self):
        source = "+ - * / % < > = ! & | ^ ( ) { } [ ] , ; :"
        ops = [v for k, v in kinds_values(source)]
        assert ops == source.split()


class TestComments:
    def test_line_comment(self):
        assert kinds_values("a // comment\nb") == [("name", "a"), ("name", "b")]

    def test_block_comment(self):
        assert kinds_values("a /* x\ny */ b") == [("name", "a"), ("name", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")


class TestPositions:
    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]
        assert tokens[2].column == 3

    def test_lines_across_block_comment(self):
        tokens = tokenize("/* one\ntwo */ x")
        assert tokens[0].line == 2
