"""Tests for MiniC → SSA lowering (the Braun construction and friends).

Every compile goes through the IR verifier (compile_source runs it), so
these tests focus on the *shape* of the SSA produced and on semantic
error reporting.
"""

import pytest

from repro.errors import CodegenError
from repro.frontend import compile_source
from repro.ir import (
    Branch,
    Cast,
    Cmp,
    LoadGlobal,
    Phi,
    StoreGlobal,
)


def compile_body(stmts: str, extra: str = ""):
    source = "global int g;\nglobal int arr[8];\n%s\nfunc f() { %s }" % (extra, stmts)
    return compile_source(source).function_named("f")


def phis_of(function):
    return [i for i in function.instructions() if isinstance(i, Phi)]


class TestStraightLine:
    def test_local_reads_fold_to_values(self):
        f = compile_body("local int x = 1; local int y = x + 2; output(y);")
        # No loads/stores for locals: pure SSA.
        assert not any(isinstance(i, (LoadGlobal, StoreGlobal))
                       for i in f.instructions())

    def test_global_access_uses_memory_ops(self):
        f = compile_body("g = g + 1;")
        opcodes = [i.opcode for i in f.instructions()]
        assert "load" in opcodes and "store" in opcodes

    def test_array_round_trip(self):
        f = compile_body("arr[1] = arr[0] + 1;")
        opcodes = [i.opcode for i in f.instructions()]
        assert "loadelem" in opcodes and "storeelem" in opcodes


class TestSSAConstruction:
    def test_if_else_join_creates_phi(self):
        f = compile_body(
            "local int x = 0; if (g > 0) { x = 1; } else { x = 2; } output(x);")
        phis = phis_of(f)
        assert len(phis) == 1
        values = sorted(v.value for v in phis[0].operands)
        assert values == [1, 2]

    def test_one_sided_if_creates_phi(self):
        f = compile_body(
            "local int x = 0; if (g > 0) { x = 1; } output(x);")
        assert len(phis_of(f)) == 1

    def test_unused_join_has_no_phi(self):
        f = compile_body(
            "local int x = 0; if (g > 0) { x = 1; } else { x = 2; }")
        assert phis_of(f) == []

    def test_loop_counter_phi(self):
        f = compile_body(
            "local int i; for (i = 0; i < 10; i = i + 1) { output(i); }")
        header = f.block_named("loop.header")
        header_phis = header.phis()
        assert len(header_phis) == 1
        assert {b.name for b in header_phis[0].blocks} == {
            "loop.preheader", "loop.latch"}

    def test_loop_has_dedicated_preheader(self):
        f = compile_body("local int i; while (i < 3) { i = i + 1; }")
        preheader = f.block_named("loop.preheader")
        assert len(preheader.instructions) == 1
        assert preheader.instructions[0].opcode == "jmp"

    def test_nested_loop_accumulator(self):
        f = compile_body(
            "local int s = 0; local int i; local int j;"
            "for (i = 0; i < 3; i = i + 1) {"
            "  for (j = 0; j < 3; j = j + 1) { s = s + 1; }"
            "} output(s);")
        # s gets a phi in each loop header
        assert len(phis_of(f)) >= 3  # i, j, and s twice (may fold)

    def test_break_merges_values_at_exit(self):
        f = compile_body(
            "local int x = 0;"
            "while (true) { x = 1; if (g > 0) { break; } x = 2; }"
            "output(x);")
        exit_block = f.block_named("loop.exit")
        assert len(exit_block.phis()) <= 1  # x at the break join
        # function must still verify (done inside compile) and terminate

    def test_dead_code_after_return_pruned(self):
        f = compile_body("return; output(1);")
        assert all(i.opcode != "output" for i in f.instructions())


class TestTypes:
    def test_int_to_float_promotion(self):
        source = "global float fg;\nfunc f() { fg = 1 + 0.5; }"
        compile_source(source)

    def test_implicit_narrowing_rejected(self):
        with pytest.raises(CodegenError, match="float->int"):
            compile_body("local int x = 1.5;")

    def test_explicit_cast_allowed(self):
        f = compile_body("local int x = int(1.5 * 2.0); output(x);")
        assert any(isinstance(i, Cast) for i in f.instructions())

    def test_condition_from_int_gets_nonzero_test(self):
        f = compile_body("if (g) { output(1); }")
        cmps = [i for i in f.instructions() if isinstance(i, Cmp)]
        assert len(cmps) == 1 and cmps[0].op == "ne"


class TestCalls:
    def test_forward_reference(self):
        source = """
        func caller() : int { return callee(1); }
        func callee(int x) : int { return x + 1; }
        """
        module = compile_source(source)
        assert module.function_named("caller") is not None

    def test_arity_mismatch_rejected(self):
        source = "func a() { b(1, 2); }\nfunc b(int x) { }"
        with pytest.raises(CodegenError, match="arguments"):
            compile_source(source)

    def test_unknown_function_rejected(self):
        with pytest.raises(CodegenError, match="unknown function"):
            compile_body("nosuch();")

    def test_recursion_compiles(self):
        source = """
        func fact(int n) : int {
          if (n <= 1) { return 1; }
          return n * fact(n - 1);
        }
        """
        compile_source(source)

    def test_funcref_and_callptr(self):
        source = """
        global int fp;
        func target(int x) : int { return x; }
        func f() { fp = &target; local int r = callptr(fp, 3); output(r); }
        """
        compile_source(source)


class TestSemanticErrors:
    def test_duplicate_local(self):
        with pytest.raises(CodegenError, match="duplicate local"):
            compile_body("local int x; local int x;")

    def test_local_shadowing_global_rejected(self):
        with pytest.raises(CodegenError, match="shadows"):
            compile_body("local int g;")

    def test_undeclared_name(self):
        with pytest.raises(CodegenError, match="undeclared"):
            compile_body("output(nope);")

    def test_assign_to_undeclared(self):
        with pytest.raises(CodegenError, match="undeclared"):
            compile_body("nope = 1;")

    def test_break_outside_loop(self):
        with pytest.raises(CodegenError, match="break"):
            compile_body("break;")

    def test_whole_array_assignment_rejected(self):
        with pytest.raises(CodegenError):
            compile_body("arr = 1;")

    def test_array_without_index_rejected(self):
        with pytest.raises(CodegenError, match="index"):
            compile_body("output(arr);")

    def test_lock_on_non_lock_rejected(self):
        with pytest.raises(CodegenError, match="not a lock"):
            compile_body("lock(g);")

    def test_void_return_with_value_rejected(self):
        with pytest.raises(CodegenError, match="void"):
            compile_body("return 1;")


class TestExecutionSemantics:
    """End-to-end: compile tiny programs, run on one thread, check outputs."""

    def run_output(self, body, extra=""):
        from repro.runtime.interpreter import Machine
        source = ("global int g;\nglobal int arr[8];\n%s\n"
                  "func slave() { %s }" % (extra, body))
        module = compile_source(source)
        machine = Machine(module, 1, entry="slave")
        result = machine.run()
        assert result.status == "ok", result.failure_message
        return result.outputs[0]

    def test_arithmetic(self):
        assert self.run_output("output(2 + 3 * 4 - 1);") == [13]
        assert self.run_output("output(7 / 2); output(7 %% 2);"
                               .replace("%%", "%")) == [3, 1]

    def test_loop_sum(self):
        body = ("local int s = 0; local int i;"
                "for (i = 1; i <= 10; i = i + 1) { s = s + i; } output(s);")
        assert self.run_output(body) == [55]

    def test_break_continue(self):
        body = ("local int s = 0; local int i;"
                "for (i = 0; i < 10; i = i + 1) {"
                "  if (i == 5) { break; }"
                "  if (i - (i / 2) * 2 == 0) { continue; }"
                "  s = s + i; } output(s);")
        # odd numbers below 5: 1 + 3
        assert self.run_output(body) == [4]

    def test_while_with_condition_update(self):
        body = ("local int x = 16; local int n = 0;"
                "while (x > 1) { x = x / 2; n = n + 1; } output(n);")
        assert self.run_output(body) == [4]

    def test_recursion_fibonacci(self):
        extra = ("func fib(int n) : int {"
                 "  if (n < 2) { return n; }"
                 "  return fib(n - 1) + fib(n - 2); }")
        assert self.run_output("output(fib(10));", extra) == [55]

    def test_logical_operators(self):
        body = ("local int a = 3;"
                "if (a > 1 && a < 5) { output(1); }"
                "if (a < 1 || a == 3) { output(2); }"
                "if (!(a == 4)) { output(3); }")
        assert self.run_output(body) == [1, 2, 3]

    def test_min_max_builtins(self):
        assert self.run_output("output(min(3, 7)); output(max(3, 7));") == [3, 7]

    def test_shift_and_bitwise(self):
        assert self.run_output(
            "output(1 << 4); output(255 >> 4); output(12 & 10);"
            "output(12 | 10); output(12 ^ 10);") == [16, 15, 8, 14, 6]
