"""Seed-derivation stability — the foundation of cross-process
determinism.  The golden values pin the derivation across interpreter
invocations and ``PYTHONHASHSEED`` settings: if any of them moves, every
previously recorded fault plan silently changes."""

import random

from repro.faults import FaultType, injection_seed, plan_injection
from repro.parallel import derive_seed, stable_hash


class TestStableHash:
    def test_known_values(self):
        # CRC-32 of the UTF-8 bytes; hash() would be salted per-process.
        assert stable_hash("branch-flip") == 3286820717
        assert stable_hash("") == 0

    def test_differs_by_input(self):
        assert stable_hash("a") != stable_hash("b")


class TestDeriveSeed:
    def test_golden_values(self):
        assert derive_seed(0) == 7881388936124425723
        assert (derive_seed(2012, "injection", "branch-flip", 0)
                == 6928784301494346562)
        assert (derive_seed(2012, "injection", "branch-flip", 1)
                == 13591448566928920128)

    def test_sensitive_to_every_component(self):
        base = derive_seed(7, "x", 3)
        assert derive_seed(8, "x", 3) != base
        assert derive_seed(7, "y", 3) != base
        assert derive_seed(7, "x", 4) != base

    def test_component_boundaries_are_unambiguous(self):
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")
        assert derive_seed(1, "a", 12) != derive_seed(1, "a12")

    def test_accepts_scalars(self):
        assert derive_seed(1, True) != derive_seed(1, 1)
        assert derive_seed(1, 2.5) != derive_seed(1, 2)
        assert derive_seed(1, -3) != derive_seed(1, 3)

    def test_64_bit_range(self):
        for index in range(50):
            seed = derive_seed(99, "t", index)
            assert 0 <= seed < 2 ** 64


class TestInjectionSeeds:
    def test_per_index_independence(self):
        """Counter-mode derivation: each index's seed does not depend on
        any other index having been planned — the partitioning
        invariance the pool engine relies on."""
        forward = [injection_seed(5, FaultType.BRANCH_FLIP, i)
                   for i in range(10)]
        shuffled_order = list(range(10))
        random.Random(0).shuffle(shuffled_order)
        by_any_order = {i: injection_seed(5, FaultType.BRANCH_FLIP, i)
                        for i in shuffled_order}
        assert forward == [by_any_order[i] for i in range(10)]
        assert len(set(forward)) == len(forward)

    def test_fault_types_get_distinct_streams(self):
        assert (injection_seed(5, FaultType.BRANCH_FLIP, 0)
                != injection_seed(5, FaultType.BRANCH_CONDITION, 0))

    def test_plan_injection_is_pure(self):
        counts = {1: 40, 2: 35, 3: 0, 4: 12}
        a = plan_injection(FaultType.BRANCH_FLIP, counts, 77, 3)
        b = plan_injection(FaultType.BRANCH_FLIP, counts, 77, 3)
        assert a == b
        assert a.thread_id in (1, 2, 4)
        assert 1 <= a.branch_index <= counts[a.thread_id]

    def test_plan_injection_empty_counts(self):
        assert plan_injection(FaultType.BRANCH_FLIP, {1: 0}, 77, 0) is None
