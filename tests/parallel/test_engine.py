"""The pool engine: ordering, chunking, context delivery, fallbacks."""

import pytest

from repro.parallel import available_cpus, resolve_jobs, run_tasks
from repro.parallel.engine import default_chunk_size


def _square(ctx, item):
    return item * item


def _add_context(ctx, item):
    return ctx + item


def _explode(ctx, item):
    if item == 3:
        raise ValueError("item 3 is cursed")
    return item


def _make_offset(base):
    return base + 100


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_all_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == available_cpus()

    def test_malformed_env_var_names_itself(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "abc")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)


class TestChunking:
    def test_four_chunks_per_worker(self):
        assert default_chunk_size(64, 4) == 4
        assert default_chunk_size(1, 8) == 1
        assert default_chunk_size(0, 4) == 1


class TestSerial:
    def test_order_and_results(self):
        assert run_tasks(_square, range(6), jobs=1) == [0, 1, 4, 9, 16, 25]

    def test_context_passed(self):
        assert run_tasks(_add_context, [1, 2], jobs=1, context=10) == [11, 12]

    def test_factory_builds_context_when_missing(self):
        assert run_tasks(_add_context, [1], jobs=1,
                         context_factory=_make_offset,
                         factory_args=(5,)) == [106]

    def test_progress_fires_per_item(self):
        seen = []
        run_tasks(_square, range(4), jobs=1,
                  progress=lambda done, total, secs: seen.append((done, total)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_errors_propagate(self):
        with pytest.raises(ValueError, match="cursed"):
            run_tasks(_explode, range(5), jobs=1)


class TestPool:
    def test_results_in_item_order(self):
        assert run_tasks(_square, range(20), jobs=2) == [i * i
                                                         for i in range(20)]

    def test_order_independent_of_chunk_size(self):
        expected = [i * i for i in range(11)]
        for chunk_size in (1, 2, 5, 100):
            assert run_tasks(_square, range(11), jobs=3,
                             chunk_size=chunk_size) == expected

    def test_live_context_reaches_workers(self):
        # fork delivers the parent's context object without pickling
        assert run_tasks(_add_context, range(5), jobs=2,
                         context=1000) == [1000 + i for i in range(5)]

    def test_progress_counts_reach_total(self):
        seen = []
        run_tasks(_square, range(12), jobs=2, chunk_size=4,
                  progress=lambda done, total, secs: seen.append((done, total)))
        assert [total for _, total in seen] == [12, 12, 12]
        assert sorted(done for done, _ in seen)[-1] == 12

    def test_errors_propagate_from_workers(self):
        with pytest.raises(ValueError, match="cursed"):
            run_tasks(_explode, range(5), jobs=2, chunk_size=1)

    def test_single_item_stays_serial(self):
        # len(items) <= 1 short-circuits to the in-process loop
        assert run_tasks(_square, [7], jobs=8) == [49]

    def test_empty_items(self):
        assert run_tasks(_square, [], jobs=4) == []
