"""Diagnostics must be byte-identical under any ``PYTHONHASHSEED``.

The lint layer promises deterministic output: ordered worklists, sorted
report keys, canonical JSON.  These tests re-run the CLI in fresh
interpreters with different hash seeds and compare raw bytes.
"""

import os
import subprocess
import sys

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")
FIXTURES = [
    "examples/racy/missing_lock.mc",
    "examples/racy/cross_phase.mc",
    "examples/racy/overlapping_indices.mc",
]


def lint_bytes(args, hashseed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = os.path.abspath(SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint.cli", "--format", "json"] + args,
        capture_output=True, env=env,
        cwd=os.path.join(os.path.dirname(__file__), "..", ".."))
    assert proc.returncode in (0, 1), proc.stderr.decode()
    return proc.stdout


class TestHashSeedStability:
    def test_kernels_and_fixtures_byte_identical(self):
        args = ["--all-kernels"] + FIXTURES
        runs = {seed: lint_bytes(args, seed)
                for seed in ("0", "1", "random")}
        assert runs["0"] == runs["1"] == runs["random"]
        assert runs["0"]  # sanity: the report is non-empty

    def test_repeated_random_seeds_agree(self):
        args = [FIXTURES[0]]
        first = lint_bytes(args, "random")
        second = lint_bytes(args, "random")
        assert first == second
