"""Tests for the ``repro-lint`` command-line tool."""

import json

import pytest

from repro.lint.cli import main
from repro.store import open_store

RACY = """
global int nprocs;
global int counter;
global lock l;

func slave() {
  counter = counter + 1;
}
"""

CLEAN = """
global int nprocs;
global int counter;
global lock l;

func slave() {
  lock(l);
  counter = counter + 1;
  unlock(l);
}
"""


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.mc"
    path.write_text(RACY)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.mc"
    path.write_text(CLEAN)
    return str(path)


class TestExitCodes:
    def test_clean_program_exits_zero(self, clean_file, capsys):
        assert main([clean_file]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_racy_program_exits_one(self, racy_file, capsys):
        assert main([racy_file]) == 1
        out = capsys.readouterr().out
        assert "scalar-race" in out

    def test_kernel_spec_exits_zero(self, capsys):
        assert main(["kernel:radix"]) == 0
        assert "radix" in capsys.readouterr().out

    def test_unknown_kernel_exits_two(self, capsys):
        assert main(["kernel:nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "nope" in err

    def test_missing_path_exits_two(self, capsys):
        assert main(["/no/such/program.mc"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_no_programs_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main([])


class TestJsonFormat:
    def test_single_program_payload(self, racy_file, capsys):
        main([racy_file, "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "racy"
        assert payload["summary"]["errors"] > 0
        assert all(d["fingerprint"] for d in payload["diagnostics"])

    def test_multi_program_payload_sorted_by_name(self, racy_file,
                                                  clean_file, capsys):
        main([racy_file, clean_file, "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        names = [r["name"] for r in payload["reports"]]
        assert names == sorted(names) == ["clean", "racy"]

    def test_output_file(self, racy_file, tmp_path, capsys):
        out = tmp_path / "report.json"
        main([racy_file, "--format", "json", "-o", str(out)])
        assert capsys.readouterr().out == ""
        payload = json.loads(out.read_text())
        assert payload["summary"]["errors"] > 0

    def test_unwritable_output_exits_two(self, clean_file, capsys):
        assert main([clean_file, "-o", "/no/such/dir/report.json"]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestBaseline:
    def test_same_report_is_clean_against_itself(self, racy_file, tmp_path,
                                                 capsys):
        base = tmp_path / "base.json"
        main([racy_file, "--format", "json", "-o", str(base)])
        # the racy program exits 0 once its findings are baselined
        assert main([racy_file, "--baseline", str(base)]) == 0

    def test_new_diagnostics_fail(self, racy_file, clean_file, tmp_path,
                                  capsys):
        base = tmp_path / "base.json"
        main([clean_file, "--format", "json", "-o", str(base)])
        capsys.readouterr()
        assert main([racy_file, "--baseline", str(base)]) == 1
        err = capsys.readouterr().err
        assert "new diagnostic(s) beyond baseline" in err

    def test_missing_baseline_exits_two(self, clean_file, capsys):
        assert main([clean_file, "--baseline", "/no/such/base.json"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_checked_in_kernel_baseline_is_current(self, capsys):
        # guards the committed CI baseline against drift
        assert main(["--all-kernels", "--format", "json",
                     "--baseline", ".github/lint-baseline.json"]) == 0


class TestStoreCache:
    def test_lint_reports_are_cached(self, racy_file, tmp_path, capsys):
        root = str(tmp_path / "store")
        assert main([racy_file, "--store", root]) == 1
        first = capsys.readouterr().out
        assert main([racy_file, "--store", root]) == 1
        second = capsys.readouterr().out
        assert first == second
        store = open_store(root)
        entries = [e for e in store.entries() if e.kind == "lint"]
        assert len(entries) == 1

    def test_get_lint_counts_hits(self, tmp_path):
        store = open_store(str(tmp_path / "store"))
        calls = []

        def compute():
            calls.append(1)
            return {"name": "x", "diagnostics": [],
                    "summary": {"errors": 0, "warnings": 0}}

        a = store.get_lint("src", "x", "slave", compute)
        b = store.get_lint("src", "x", "slave", compute)
        assert a == b
        assert len(calls) == 1


class TestUpdateBaseline:
    def test_update_writes_target_and_exits_zero(self, racy_file, tmp_path,
                                                 capsys):
        target = tmp_path / "base.json"
        assert main([racy_file, "--update-baseline",
                     "--baseline", str(target)]) == 0
        assert "baseline updated" in capsys.readouterr().out
        # the regenerated baseline immediately passes a compare run
        assert main([racy_file, "--baseline", str(target)]) == 0

    def test_update_is_atomic_no_temp_left_behind(self, racy_file, tmp_path):
        target = tmp_path / "base.json"
        main([racy_file, "--update-baseline", "--baseline", str(target)])
        assert target.exists()
        leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_update_matches_json_format_bytes(self, racy_file, tmp_path,
                                              capsys):
        target = tmp_path / "base.json"
        main([racy_file, "--update-baseline", "--baseline", str(target)])
        capsys.readouterr()
        main([racy_file, "--format", "json"])
        assert target.read_text() == capsys.readouterr().out

    def test_update_unwritable_target_exits_two(self, racy_file, capsys):
        assert main([racy_file, "--update-baseline",
                     "--baseline", "/no/such/dir/base.json"]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestJobs:
    def test_parallel_lint_bytes_match_serial(self, racy_file, clean_file,
                                              capsys):
        main([racy_file, clean_file, "--format", "json"])
        serial = capsys.readouterr().out
        main([racy_file, clean_file, "--format", "json", "--jobs", "2"])
        assert capsys.readouterr().out == serial

    def test_parallel_vuln_bytes_match_serial(self, capsys):
        main(["vuln", "kernel:radix", "kernel:fft", "--format", "json"])
        serial = capsys.readouterr().out
        main(["vuln", "kernel:radix", "kernel:fft", "--format", "json",
              "--jobs", "2"])
        assert capsys.readouterr().out == serial


class TestVulnCli:
    def test_text_report_lists_sites(self, capsys):
        assert main(["vuln", "kernel:radix"]) == 0
        out = capsys.readouterr().out
        assert "site" in out and "flip=" in out

    def test_json_payload_shape(self, capsys):
        assert main(["vuln", "kernel:radix", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "radix"
        assert payload["sites"]
        for site in payload["sites"]:
            assert set(site["predictions"]) \
                == {"branch-flip", "branch-condition"}

    def test_plain_program_all_stores_observable(self, racy_file, capsys):
        assert main(["vuln", racy_file]) == 0

    def test_no_programs_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["vuln"])

    def test_baseline_round_trip_is_clean(self, tmp_path, capsys):
        base = tmp_path / "vuln.json"
        assert main(["vuln", "kernel:radix", "--update-baseline",
                     "--baseline", str(base)]) == 0
        capsys.readouterr()
        assert main(["vuln", "kernel:radix",
                     "--baseline", str(base)]) == 0

    def test_baseline_drift_exits_one(self, tmp_path, capsys):
        base = tmp_path / "vuln.json"
        main(["vuln", "kernel:radix", "--update-baseline",
              "--baseline", str(base)])
        capsys.readouterr()
        # sparse-check analysis predicts different classes: drift
        assert main(["vuln", "kernel:radix", "--sparse-checks",
                     "--baseline", str(base)]) == 1
        assert "drifted from baseline" in capsys.readouterr().err

    def test_checked_in_vuln_baseline_is_current(self, capsys):
        # guards the committed CI baseline against drift
        assert main(["vuln", "--all-kernels", "--format", "json",
                     "--baseline", ".github/vuln-baseline.json"]) == 0

    def test_store_caches_summaries(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        assert main(["vuln", "kernel:radix", "--store", root]) == 0
        first = capsys.readouterr().out
        assert main(["vuln", "kernel:radix", "--store", root]) == 0
        assert capsys.readouterr().out == first
        store = open_store(root)
        assert [e for e in store.entries() if e.kind == "vuln"]
