"""Fuzzed-MiniC corpus through the lint layer.

The generator in :mod:`tests.integration.test_fuzzed_programs` emits
arbitrary (but race-free by construction) SPMD programs: every shared
write lands in ``out[procid * 16 + k]`` chunks or under the tid-counter
lock.  Pushing the corpus through ``repro-lint`` checks three promises
at once: the detector never crashes on generator output, it proves the
chunked writes disjoint (zero errors), and its reports are identical
across repeated runs.
"""

import pytest

from repro.frontend import compile_source
from repro.lint import lint_module
from tests.integration.test_fuzzed_programs import ProgramGenerator

pytestmark = pytest.mark.slow

SEEDS = range(60)


class TestFuzzedCorpus:
    def test_corpus_lints_clean_and_stable(self):
        for seed in SEEDS:
            source = ProgramGenerator(seed).generate()
            module = compile_source(source, "fuzz%d" % seed)
            report = lint_module(module, name="fuzz%d" % seed)
            assert report.errors == [], (
                "seed %d: %s" % (seed, [d.render() for d in report.errors]))
            # second run over a fresh compile: byte-identical report
            again = lint_module(compile_source(source, "fuzz%d" % seed),
                                name="fuzz%d" % seed)
            assert report.to_json() == again.to_json()

    def test_seeded_race_is_still_caught(self):
        # strip the lock from a generated program: the corpus being
        # clean must come from the detector's reasoning, not blindness
        source = next(ProgramGenerator(seed).generate() for seed in SEEDS
                      if "lock(l);" in ProgramGenerator(seed).generate())
        racy = source.replace("unlock(l);", "").replace("lock(l);", "")
        assert racy != source
        module = compile_source(racy, "fuzz-unlocked", verify=False)
        report = lint_module(module, name="fuzz-unlocked")
        assert any(d.code == "scalar-race" for d in report.errors)
