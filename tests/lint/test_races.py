"""Tests for the static race detector over fixtures and kernels."""

import pytest

from repro.frontend import compile_source
from repro.lint import SEVERITY_ERROR, SEVERITY_WARNING, lint_module
from repro.splash2 import KERNELS, kernel

PRELUDE = """
global int n = 8;
global int counter;
global int g;
global int out[64];
global int hist[64];
global lock l;
global barrier b;
global barrier b2;
"""


def lint(body: str, extra: str = "") -> "LintReport":
    module = compile_source(PRELUDE + extra + "\nfunc slave() { %s }" % body)
    return lint_module(module)


def lint_file(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_module(compile_source(source, path))


class TestRacyFixtures:
    def test_missing_lock_flags_scalar_races(self):
        report = lint_file("examples/racy/missing_lock.mc")
        assert report.errors
        assert {d.code for d in report.errors} == {"scalar-race"}
        assert report.racy_locations == ("counter",)

    def test_cross_phase_flags_mixed_index(self):
        report = lint_file("examples/racy/cross_phase.mc")
        assert [d.code for d in report.errors] == ["mixed-index"]

    def test_overlapping_indices_flags_overlap(self):
        report = lint_file("examples/racy/overlapping_indices.mc")
        assert [d.code for d in report.errors] == ["index-overlap"]

    def test_diagnostics_carry_witnesses(self):
        report = lint_file("examples/racy/missing_lock.mc")
        for diag in report.errors:
            assert diag.access.location == "counter"
            assert diag.witness.location == "counter"
            assert diag.access.kind == "store"  # store anchors the pair


class TestSuppression:
    def test_lock_protects_scalar(self):
        report = lint("lock(l); counter = counter + 1; unlock(l);")
        assert not report.diagnostics
        assert report.stats["lock_protected"] > 0

    def test_unlocked_increment_races(self):
        report = lint("counter = counter + 1;")
        assert {d.code for d in report.errors} == {"scalar-race"}

    def test_unique_thread_guard_suppresses(self):
        report = lint("if (tid() == 0) { counter = 5; output(counter); }")
        assert not report.errors
        assert report.stats["unique_thread"] > 0

    def test_guarded_store_vs_naked_load_races(self):
        report = lint(
            "if (tid() == 0) { counter = 5; } "
            "local int x = counter; output(x);")
        assert {d.code for d in report.errors} == {"scalar-race"}

    def test_barrier_separates_phases(self):
        report = lint(
            "if (tid() == 0) { counter = 7; } barrier(b); "
            "out[tid()] = counter;")
        assert not report.errors
        assert report.stats["phase_disjoint"] > 0

    def test_missing_barrier_is_caught(self):
        report = lint("if (tid() == 0) { counter = 7; } out[tid()] = counter;")
        assert report.errors

    def test_publish_then_read_loop_needs_trailing_barrier(self):
        racy = """
        local int i;
        for (i = 0; i < n; i = i + 1) {
          if (tid() == 0) { out[0] = i; }
          barrier(b);
          output(out[0]);
        }
        """
        fixed = racy.replace("output(out[0]);",
                             "output(out[0]); barrier(b2);")
        assert lint(racy).errors
        assert not lint(fixed).errors


class TestIndexVerdicts:
    def test_tid_indexed_arrays_are_disjoint(self):
        report = lint("out[tid()] = tid(); local int y = out[tid()]; "
                      "output(y);")
        assert not report.diagnostics
        assert report.stats["tid_disjoint"] > 0

    def test_constant_offset_overlap(self):
        report = lint("out[tid()] = 1; out[tid() + 1] = 2;")
        assert [d.code for d in report.errors] == ["index-overlap"]

    def test_stride_two_with_odd_offset_is_disjoint(self):
        report = lint("out[tid() * 2] = 1; out[tid() * 2 + 1] = 2;")
        assert not report.diagnostics

    def test_stride_two_with_even_offset_collides(self):
        report = lint("out[tid() * 2] = 1; out[tid() * 2 + 2] = 2;")
        assert [d.code for d in report.errors] == ["index-overlap"]

    def test_shared_index_store_is_an_error(self):
        # every thread computes the same index: a true same-cell race
        report = lint("out[counter] = 1;")
        assert report.errors

    def test_data_dependent_scatter_is_a_warning(self):
        report = lint("out[tid()] = tid(); hist[out[tid()]] = 1;")
        assert not report.errors
        assert [d.code for d in report.warnings] == ["unproven-index"]
        assert report.warnings[0].severity == SEVERITY_WARNING

    def test_tid_store_vs_shared_load_mixed_index(self):
        # writers scatter by tid while a reader walks a shared index
        report = lint("""
        out[tid()] = tid();
        local int i;
        local int s = 0;
        for (i = 0; i < n; i = i + 1) { s = s + out[i]; }
        output(s);
        """)
        assert {d.code for d in report.errors} == {"mixed-index"}


class TestReportShape:
    def test_stats_are_populated(self):
        report = lint("counter = counter + 1;")
        for key in ("accesses", "locations", "pairs"):
            assert report.stats[key] > 0

    def test_diagnostics_sorted_and_stable(self):
        report = lint_file("examples/racy/missing_lock.mc")
        keys = [d.sort_key() for d in report.diagnostics]
        assert keys == sorted(keys)
        again = lint_file("examples/racy/missing_lock.mc")
        assert report.to_json() == again.to_json()

    def test_as_dict_round_trips_schema(self):
        report = lint("counter = 1;")
        payload = report.as_dict()
        assert payload["schema"] >= 1
        assert payload["summary"]["errors"] == len(report.errors)
        for diag in payload["diagnostics"]:
            assert diag["fingerprint"]

    def test_severity_partition(self):
        report = lint_file("examples/racy/missing_lock.mc")
        assert all(d.severity == SEVERITY_ERROR for d in report.errors)
        assert set(report.diagnostics) == set(report.errors) | set(
            report.warnings)


class TestKernels:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_lints_race_free(self, name):
        spec = kernel(name)
        module = compile_source(spec.source, name)
        report = lint_module(module, entry=spec.entry, name=name)
        assert report.errors == []
        assert report.racy_locations == ()

    def test_kernel_warnings_are_honest_unknowns(self):
        # data-dependent scatters (fft butterflies, radix histograms)
        # surface as warnings, never errors
        for name in sorted(KERNELS):
            spec = kernel(name)
            module = compile_source(spec.source, name)
            report = lint_module(module, entry=spec.entry, name=name)
            assert all(d.code == "unproven-index" for d in report.warnings)
