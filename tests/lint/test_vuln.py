"""Tests for the static fault-vulnerability analyzer (repro.lint.vuln)."""

import json
import os
import subprocess
import sys

import pytest

from repro.frontend import compile_source
from repro.lint.vuln import (
    CLASS_MASKED,
    CLASS_MONITORED,
    CLASS_SDC,
    MODEL_CONDITION,
    MODEL_FLIP,
    analyze_program,
    analyze_vulnerability,
    branch_site_map,
    function_fingerprint,
    summarize_function,
)
from repro.runtime.program import ParallelProgram

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

PRELUDE = """
global int n = 8;
global int g;
global int h;
global int out[64];
global int scratch[64];
"""


def module_of(body: str, extra: str = ""):
    """Compile an *uninstrumented* module: no branch is checked, so
    classifications depend purely on data/divergence reachability."""
    return compile_source(PRELUDE + extra + "\nfunc slave() { %s }" % body)


def classes_of(body: str, outputs=("out",), extra: str = ""):
    report = analyze_vulnerability(module_of(body, extra), entry="slave",
                                   output_globals=outputs)
    return report


def site_in(report, block_name: str):
    for site in report.sites:
        if site.block == block_name and site.function == "slave":
            return site
    raise AssertionError("no slave site in block %r (have %s)"
                         % (block_name, [s.block for s in report.sites]))


class TestClassification:
    def test_branch_guarding_output_store_is_sdc_prone(self):
        report = classes_of("if (g > 2) { out[0] = 1; } out[1] = 2;")
        site = site_in(report, "entry")
        assert site.predictions[MODEL_FLIP] == CLASS_SDC
        assert site.predictions[MODEL_CONDITION] == CLASS_SDC

    def test_branch_guarding_dead_local_is_masked(self):
        report = classes_of(
            "local int dead; if (g > 2) { dead = dead + 1; } out[0] = 1;")
        site = site_in(report, "entry")
        assert site.predictions[MODEL_FLIP] == CLASS_MASKED
        assert site.predictions[MODEL_CONDITION] == CLASS_MASKED

    def test_store_to_unread_global_is_masked(self):
        # h is not an output and nothing loads it: provably unobservable.
        report = classes_of("if (g > 2) { h = 7; } out[0] = 1;")
        site = site_in(report, "entry")
        assert site.predictions[MODEL_FLIP] == CLASS_MASKED

    def test_store_read_into_output_is_sdc_prone(self):
        report = classes_of("if (g > 2) { h = 7; } out[0] = h;")
        site = site_in(report, "entry")
        assert site.predictions[MODEL_FLIP] == CLASS_SDC

    def test_no_output_globals_means_every_store_observable(self):
        report = classes_of("if (g > 2) { h = 7; }", outputs=())
        site = site_in(report, "entry")
        assert site.predictions[MODEL_FLIP] == CLASS_SDC

    def test_output_intrinsic_is_observable(self):
        report = classes_of("if (g > 2) { output(g); } out[0] = 1;")
        site = site_in(report, "entry")
        assert site.predictions[MODEL_FLIP] == CLASS_SDC

    def test_constant_index_algebra_decouples_disjoint_elements(self):
        # Store to scratch[0], only scratch[1] is ever read: masked.
        report = classes_of(
            "if (g > 2) { scratch[0] = 5; } out[0] = scratch[1];")
        assert site_in(report, "entry").predictions[MODEL_FLIP] \
            == CLASS_MASKED

    def test_constant_index_algebra_couples_matching_elements(self):
        report = classes_of(
            "if (g > 2) { scratch[1] = 5; } out[0] = scratch[1];")
        assert site_in(report, "entry").predictions[MODEL_FLIP] == CLASS_SDC

    def test_variable_index_couples_to_everything(self):
        report = classes_of(
            "local int i; i = g; if (g > 2) { scratch[i] = 5; } "
            "out[0] = scratch[1];")
        assert site_in(report, "entry").predictions[MODEL_FLIP] == CLASS_SDC

    def test_instrumented_checked_branch_is_monitored(self):
        program = ParallelProgram(
            PRELUDE + "\nfunc slave() { local int i; "
            "for (i = 0; i < n; i = i + 1) { out[i] = i; } }", "t")
        report = analyze_program(program, output_globals=("out",))
        assert report.sites, "expected at least one site"
        assert all(s.predictions[MODEL_FLIP] == CLASS_MONITORED
                   for s in report.sites if s.checked)

    def test_condition_model_can_exceed_flip_model(self):
        # The corrupted condition register also feeds the output store:
        # flipping the (dead-arm) branch is masked, corrupting the
        # condition data is not.
        report = classes_of(
            "local int x; local int dead; x = g;"
            " if (x > 2) { dead = 1; } out[0] = x;")
        site = site_in(report, "entry")
        assert site.predictions[MODEL_FLIP] == CLASS_MASKED
        assert site.predictions[MODEL_CONDITION] == CLASS_SDC


class TestInterprocedural:
    def test_callee_store_makes_caller_branch_sdc_prone(self):
        extra = "func helper() { h = 7; }\n"
        report = classes_of("if (g > 2) { helper(); } out[0] = h;",
                            extra=extra)
        assert site_in(report, "entry").predictions[MODEL_FLIP] == CLASS_SDC
        assert "helper" in report.functions

    def test_callee_argument_flows_to_output(self):
        extra = "func helper(int v) { out[0] = v; }\n"
        report = classes_of(
            "local int x; x = 1; if (g > 2) { x = 5; } helper(x);",
            extra=extra)
        assert site_in(report, "entry").predictions[MODEL_FLIP] == CLASS_SDC

    def test_callee_return_flows_to_output(self):
        extra = "func helper(): int { return g; }\n"
        report = classes_of(
            "local int x; if (g > 2) { h = 3; } x = helper();"
            " out[0] = x;", extra=extra)
        # h never read: the branch itself is masked...
        assert site_in(report, "entry").predictions[MODEL_FLIP] \
            == CLASS_MASKED
        # ...but helper's internal site population is still analyzed.
        assert "helper" in report.functions

    def test_unreachable_function_not_analyzed(self):
        extra = "func unused() { out[0] = 1; }\n"
        report = classes_of("out[0] = g;", extra=extra)
        assert "unused" not in report.functions


class TestDeterminismAndTable:
    def test_site_table_matches_branch_site_map(self):
        module = module_of(
            "local int i; for (i = 0; i < n; i = i + 1) "
            "{ if (i > 2) { out[i] = i; } }")
        report = analyze_vulnerability(module, entry="slave",
                                       output_globals=("out",))
        mapping = branch_site_map(module, report)
        assert sorted(mapping.values()) == [s.site_id for s in report.sites]

    def test_as_dict_round_trips_through_json(self):
        report = classes_of("if (g > 2) { out[0] = 1; }")
        payload = report.as_dict()
        assert json.loads(json.dumps(payload, sort_keys=True)) == payload

    def test_fingerprint_ignores_global_instrumentation_ids(self):
        # Compiling the same function behind different siblings must not
        # change its fingerprint, even though send_cond static ids and
        # callsite ids are numbered module-globally.
        src_a = PRELUDE + ("\nfunc slave() { out[0] = g; }"
                           "\nfunc other() { if (g > 1) { h = 1; } }")
        src_b = PRELUDE + ("\nfunc slave() { out[0] = g; }"
                           "\nfunc other() { if (g > 1) { h = 2; }"
                           " if (h > 1) { h = 3; } }")
        fp_a = function_fingerprint(
            ParallelProgram(src_a, "a").protected.function_named("slave"))
        fp_b = function_fingerprint(
            ParallelProgram(src_b, "b").protected.function_named("slave"))
        assert fp_a == fp_b

    def test_report_bytes_identical_across_hash_seeds(self):
        outs = set()
        for hashseed in ("0", "1", "random"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed,
                       PYTHONPATH=SRC)
            proc = subprocess.run(
                [sys.executable, "-m", "repro.lint.cli", "vuln",
                 "kernel:radix", "--sparse-checks", "--format", "json"],
                capture_output=True, env=env)
            assert proc.returncode == 0, proc.stderr.decode()
            outs.add(proc.stdout)
        assert len(outs) == 1


class TestStoreCaching:
    def test_round_trip_hits_on_unchanged_functions(self, tmp_path):
        from repro.store import open_store
        store = open_store(str(tmp_path))
        program = ParallelProgram(
            PRELUDE + "\nfunc helper() { h = g; }"
            "\nfunc slave() { helper(); out[0] = h; }", "cachetest")
        first = analyze_program(program, output_globals=("out",),
                                store=store)
        assert store.counters.get("store.vuln.miss") == 2
        store.counters.clear()
        second = analyze_program(program, output_globals=("out",),
                                 store=store)
        assert store.counters.get("store.vuln.hit") == 2
        assert "store.vuln.miss" not in store.counters
        assert first.as_dict() == second.as_dict()

    def test_editing_one_function_recomputes_only_it(self, tmp_path):
        from repro.store import open_store
        store = open_store(str(tmp_path))
        base = PRELUDE + ("\nfunc helper() { h = g; }"
                          "\nfunc slave() { helper(); out[0] = h; }")
        edited = PRELUDE + ("\nfunc helper() { h = g + 1; }"
                            "\nfunc slave() { helper(); out[0] = h; }")
        analyze_program(ParallelProgram(base, "v1"),
                        output_globals=("out",), store=store)
        store.counters.clear()
        analyze_program(ParallelProgram(edited, "v2"),
                        output_globals=("out",), store=store)
        assert store.counters.get("store.vuln.hit") == 1   # slave
        assert store.counters.get("store.vuln.miss") == 1  # helper

    def test_summary_is_json_safe(self):
        module = module_of("if (g > 2) { out[0] = 1; }")
        summary = summarize_function(module.function_named("slave"))
        assert json.loads(json.dumps(summary, sort_keys=True)) == summary


class TestEntryHandling:
    def test_bad_entry_raises(self):
        module = module_of("out[0] = 1;")
        with pytest.raises(Exception):
            analyze_vulnerability(module, entry="nope")
