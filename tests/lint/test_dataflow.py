"""Tests for the reusable worklist dataflow engine."""

import pytest

from repro.frontend import compile_source
from repro.ir import BarrierWait, Branch, Constant, Function, Jump, Ret
from repro.lint.dataflow import (
    BACKWARD,
    FORWARD,
    TOP,
    IntersectionLattice,
    UnionLattice,
    run_dataflow,
)

PRELUDE = """
global int n = 8;
global int g;
global int out[64];
global lock l;
global barrier b;
"""


def slave_fn(body: str):
    module = compile_source(PRELUDE + "\nfunc slave() { %s }" % body)
    return module.function_named("slave")


def stores(function):
    return [i for i in function.instructions() if i.opcode == "store"]


class _StoreBlocks(UnionLattice):
    """May-set of block names that executed a global store on some path."""


def store_block_transfer(fact, inst):
    if inst.opcode == "store":
        return fact | {inst.parent.name}
    return fact


class TestForward:
    def test_straight_line_accumulates(self):
        f = slave_fn("g = 1; g = 2;")
        res = run_dataflow(f, _StoreBlocks(), store_block_transfer)
        first, second = stores(f)
        assert res.before(first) == frozenset()
        assert res.after(first) == res.before(second)
        assert len(res.after(second)) == 1  # both stores share a block

    def test_branch_join_is_union(self):
        f = slave_fn("if (n > 2) { g = 1; } else { g = 2; } g = 3;")
        res = run_dataflow(f, _StoreBlocks(), store_block_transfer)
        merge_store = next(s for s in stores(f)
                           if s.parent.name == "if.end")
        # both arms' blocks reach the merge point
        assert res.before(merge_store) == {"if.then", "if.else"}

    def test_loop_reaches_fixpoint(self):
        f = slave_fn(
            "local int i; for (i = 0; i < n; i = i + 1) { g = i; } g = 0;")
        res = run_dataflow(f, _StoreBlocks(), store_block_transfer)
        body_store, exit_store = stores(f)
        # the back edge feeds the body store's own block into its input
        assert body_store.parent.name in res.before(body_store)
        assert body_store.parent.name in res.before(exit_store)


class TestMustJoin:
    class _MustStore(IntersectionLattice):
        pass

    @staticmethod
    def transfer(fact, inst):
        if fact is TOP:
            return fact
        if inst.opcode == "store":
            return fact | {"wrote"}
        return fact

    @staticmethod
    def load_of_g(function):
        return next(i for i in function.instructions()
                    if i.opcode == "load" and i.global_.name == "g")

    def test_both_arms_store_is_must(self):
        f = slave_fn("if (n > 2) { g = 1; } else { g = 2; } output(g);")
        res = run_dataflow(f, self._MustStore(), self.transfer)
        assert res.before(self.load_of_g(f)) == frozenset({"wrote"})

    def test_one_arm_store_is_not_must(self):
        f = slave_fn("if (n > 2) { g = 1; } output(g);")
        res = run_dataflow(f, self._MustStore(), self.transfer)
        assert res.before(self.load_of_g(f)) == frozenset()


class TestBackward:
    class _BarrierAhead(UnionLattice):
        pass

    @staticmethod
    def transfer(fact, inst):
        if isinstance(inst, BarrierWait):
            return frozenset({"B"})
        return fact

    def test_barrier_on_some_path_ahead(self):
        f = slave_fn("g = 1; if (n > 2) { barrier(b); } g = 2;")
        res = run_dataflow(f, self._BarrierAhead(), self.transfer,
                           direction=BACKWARD)
        first, last = stores(f)
        # before/after keep program-order meaning for backward problems
        assert res.before(first) == frozenset({"B"})
        assert res.before(last) == frozenset()

    def test_no_barrier_ahead(self):
        f = slave_fn("g = 1; g = 2;")
        res = run_dataflow(f, self._BarrierAhead(), self.transfer,
                           direction=BACKWARD)
        assert res.before(stores(f)[0]) == frozenset()


def block_name_transfer(fact, inst):
    """Tag every block by its terminator (blocks here hold only one)."""
    return fact | {inst.parent.name}


def must_block_name_transfer(fact, inst):
    if fact is TOP:
        return fact
    return fact | {inst.parent.name}


class TestEdgeCases:
    """CFG shapes the frontend never emits but hand-built IR (and future
    passes) can: unreachable blocks, self-loops, minimal functions."""

    @staticmethod
    def orphan_fn():
        """entry -> exit, plus an unreachable 'orphan' also -> exit."""
        f = Function("orphan_holder")
        entry = f.add_block("entry")
        exit_ = f.add_block("exit")
        orphan = f.add_block("orphan")
        entry.append(Jump(exit_))
        orphan.append(Jump(exit_))
        exit_.append(Ret())
        return f

    def test_unreachable_block_keeps_optimistic_fact(self):
        f = self.orphan_fn()
        res = run_dataflow(f, UnionLattice(), block_name_transfer)
        orphan_jump = f.block_named("orphan").terminator
        assert res.before(orphan_jump) == frozenset()

    def test_unreachable_block_may_effects_flow_downstream(self):
        # Unreachable blocks are still analyzed (with the optimistic
        # input), so a may-analysis conservatively sees their effects at
        # the join — dead code can only widen a may-set, never shrink it.
        f = self.orphan_fn()
        res = run_dataflow(f, UnionLattice(), block_name_transfer)
        ret = f.block_named("exit").terminator
        assert res.before(ret) == frozenset({"entry", "orphan"})

    def test_unreachable_block_does_not_destroy_must_join(self):
        # For a must-analysis the orphan's TOP must be the join
        # identity, not wipe the facts flowing in from 'entry'.
        f = self.orphan_fn()
        res = run_dataflow(f, IntersectionLattice(),
                           must_block_name_transfer)
        ret = f.block_named("exit").terminator
        assert res.before(ret) == frozenset({"entry"})

    def test_self_loop_join_reaches_fixpoint(self):
        f = Function("selfloop")
        entry = f.add_block("entry")
        loop = f.add_block("loop")
        exit_ = f.add_block("exit")
        entry.append(Jump(loop))
        loop.append(Branch(Constant(True), loop, exit_))
        exit_.append(Ret())
        res = run_dataflow(f, UnionLattice(), block_name_transfer)
        # The self edge feeds the block's own fact back into its input.
        assert res.before(loop.terminator) == frozenset({"entry", "loop"})
        assert res.before(exit_.terminator) == frozenset({"entry", "loop"})

    def test_self_loop_must_join_intersects_with_back_edge(self):
        f = Function("selfloop_must")
        entry = f.add_block("entry")
        loop = f.add_block("loop")
        exit_ = f.add_block("exit")
        entry.append(Jump(loop))
        loop.append(Branch(Constant(True), loop, exit_))
        exit_.append(Ret())
        res = run_dataflow(f, IntersectionLattice(),
                           must_block_name_transfer)
        # Only 'entry' is on *every* path into the loop header.
        assert res.before(loop.terminator) == frozenset({"entry"})

    def test_minimal_function_forward_and_backward(self):
        f = Function("empty")
        f.add_block("entry").append(Ret())
        ret = f.entry.terminator
        fwd = run_dataflow(f, UnionLattice(), block_name_transfer)
        assert fwd.before(ret) == frozenset()
        assert fwd.after(ret) == frozenset({"entry"})
        bwd = run_dataflow(f, UnionLattice(), block_name_transfer,
                           direction=BACKWARD)
        # Program-order naming: 'after' faces the function exit.
        assert bwd.after(ret) == frozenset()
        assert bwd.before(ret) == frozenset({"entry"})

    def test_minimal_function_must_analysis(self):
        f = Function("empty_must")
        f.add_block("entry").append(Ret())
        res = run_dataflow(f, IntersectionLattice(),
                           must_block_name_transfer)
        assert res.before(f.entry.terminator) == frozenset()


class TestEngineSafety:
    def test_unknown_direction_rejected(self):
        f = slave_fn("g = 1;")
        with pytest.raises(ValueError, match="direction"):
            run_dataflow(f, _StoreBlocks(), store_block_transfer,
                         direction="sideways")

    def test_non_monotone_transfer_trips_safety_valve(self):
        f = slave_fn("local int i; for (i = 0; i < n; i = i + 1) { g = i; }")
        ticks = [0]

        def churning(fact, inst):
            ticks[0] += 1
            return frozenset({ticks[0]})  # new fact every visit

        with pytest.raises(RuntimeError, match="did not converge"):
            run_dataflow(f, _StoreBlocks(), churning, max_passes=50)

    def test_forward_is_default(self):
        f = slave_fn("g = 1;")
        res = run_dataflow(f, _StoreBlocks(), store_block_transfer)
        assert res.direction == FORWARD
