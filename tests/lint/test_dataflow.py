"""Tests for the reusable worklist dataflow engine."""

import pytest

from repro.frontend import compile_source
from repro.ir import BarrierWait
from repro.lint.dataflow import (
    BACKWARD,
    FORWARD,
    TOP,
    IntersectionLattice,
    UnionLattice,
    run_dataflow,
)

PRELUDE = """
global int n = 8;
global int g;
global int out[64];
global lock l;
global barrier b;
"""


def slave_fn(body: str):
    module = compile_source(PRELUDE + "\nfunc slave() { %s }" % body)
    return module.function_named("slave")


def stores(function):
    return [i for i in function.instructions() if i.opcode == "store"]


class _StoreBlocks(UnionLattice):
    """May-set of block names that executed a global store on some path."""


def store_block_transfer(fact, inst):
    if inst.opcode == "store":
        return fact | {inst.parent.name}
    return fact


class TestForward:
    def test_straight_line_accumulates(self):
        f = slave_fn("g = 1; g = 2;")
        res = run_dataflow(f, _StoreBlocks(), store_block_transfer)
        first, second = stores(f)
        assert res.before(first) == frozenset()
        assert res.after(first) == res.before(second)
        assert len(res.after(second)) == 1  # both stores share a block

    def test_branch_join_is_union(self):
        f = slave_fn("if (n > 2) { g = 1; } else { g = 2; } g = 3;")
        res = run_dataflow(f, _StoreBlocks(), store_block_transfer)
        merge_store = next(s for s in stores(f)
                           if s.parent.name == "if.end")
        # both arms' blocks reach the merge point
        assert res.before(merge_store) == {"if.then", "if.else"}

    def test_loop_reaches_fixpoint(self):
        f = slave_fn(
            "local int i; for (i = 0; i < n; i = i + 1) { g = i; } g = 0;")
        res = run_dataflow(f, _StoreBlocks(), store_block_transfer)
        body_store, exit_store = stores(f)
        # the back edge feeds the body store's own block into its input
        assert body_store.parent.name in res.before(body_store)
        assert body_store.parent.name in res.before(exit_store)


class TestMustJoin:
    class _MustStore(IntersectionLattice):
        pass

    @staticmethod
    def transfer(fact, inst):
        if fact is TOP:
            return fact
        if inst.opcode == "store":
            return fact | {"wrote"}
        return fact

    @staticmethod
    def load_of_g(function):
        return next(i for i in function.instructions()
                    if i.opcode == "load" and i.global_.name == "g")

    def test_both_arms_store_is_must(self):
        f = slave_fn("if (n > 2) { g = 1; } else { g = 2; } output(g);")
        res = run_dataflow(f, self._MustStore(), self.transfer)
        assert res.before(self.load_of_g(f)) == frozenset({"wrote"})

    def test_one_arm_store_is_not_must(self):
        f = slave_fn("if (n > 2) { g = 1; } output(g);")
        res = run_dataflow(f, self._MustStore(), self.transfer)
        assert res.before(self.load_of_g(f)) == frozenset()


class TestBackward:
    class _BarrierAhead(UnionLattice):
        pass

    @staticmethod
    def transfer(fact, inst):
        if isinstance(inst, BarrierWait):
            return frozenset({"B"})
        return fact

    def test_barrier_on_some_path_ahead(self):
        f = slave_fn("g = 1; if (n > 2) { barrier(b); } g = 2;")
        res = run_dataflow(f, self._BarrierAhead(), self.transfer,
                           direction=BACKWARD)
        first, last = stores(f)
        # before/after keep program-order meaning for backward problems
        assert res.before(first) == frozenset({"B"})
        assert res.before(last) == frozenset()

    def test_no_barrier_ahead(self):
        f = slave_fn("g = 1; g = 2;")
        res = run_dataflow(f, self._BarrierAhead(), self.transfer,
                           direction=BACKWARD)
        assert res.before(stores(f)[0]) == frozenset()


class TestEngineSafety:
    def test_unknown_direction_rejected(self):
        f = slave_fn("g = 1;")
        with pytest.raises(ValueError, match="direction"):
            run_dataflow(f, _StoreBlocks(), store_block_transfer,
                         direction="sideways")

    def test_non_monotone_transfer_trips_safety_valve(self):
        f = slave_fn("local int i; for (i = 0; i < n; i = i + 1) { g = i; }")
        ticks = [0]

        def churning(fact, inst):
            ticks[0] += 1
            return frozenset({ticks[0]})  # new fact every visit

        with pytest.raises(RuntimeError, match="did not converge"):
            run_dataflow(f, _StoreBlocks(), churning, max_passes=50)

    def test_forward_is_default(self):
        f = slave_fn("g = 1;")
        res = run_dataflow(f, _StoreBlocks(), store_block_transfer)
        assert res.direction == FORWARD
