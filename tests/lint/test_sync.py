"""Tests for barrier-phase and must-lockset analyses."""

from repro.frontend import compile_source
from repro.lint.sync import (
    barrier_token,
    entry_token,
    functions_with_barriers,
    lockset_analysis,
    lockset_at,
    phase_analysis,
    phases_at,
)

PRELUDE = """
global int n = 8;
global int g;
global int out[64];
global lock l;
global lock l2;
global barrier b;
global barrier b2;
"""


def slave_fn(body: str, extra: str = ""):
    module = compile_source(PRELUDE + extra + "\nfunc slave() { %s }" % body)
    return module.function_named("slave")


def stores(function):
    return sorted((i for i in function.instructions() if i.opcode == "store"),
                  key=lambda i: i.value.value)


def barriers(function):
    return [i for i in function.instructions() if i.opcode == "barrier"]


class TestPhases:
    def test_straight_line_phases(self):
        f = slave_fn("g = 1; barrier(b); g = 2; barrier(b2); g = 3;")
        f.number_values()
        res = phase_analysis(f)
        s1, s2, s3 = stores(f)
        bw1, bw2 = barriers(f)
        assert phases_at(res, s1) == {entry_token(f)}
        assert phases_at(res, s2) == {barrier_token(f, bw1)}
        assert phases_at(res, s3) == {barrier_token(f, bw2)}

    def test_barrier_closes_its_own_phase(self):
        f = slave_fn("g = 1; barrier(b);")
        f.number_values()
        res = phase_analysis(f)
        (bw,) = barriers(f)
        # the wait itself still belongs to the phase it closes
        assert phases_at(res, bw) == {entry_token(f)}

    def test_loop_back_edge_merges_phases(self):
        body = """
        local int i;
        for (i = 0; i < n; i = i + 1) {
          g = i;
          barrier(b);
          output(g);
        }
        """
        f = slave_fn(body)
        f.number_values()
        res = phase_analysis(f)
        (bw,) = barriers(f)
        store = next(i for i in f.instructions() if i.opcode == "store")
        load = next(i for i in f.instructions()
                    if i.opcode == "load" and i.global_.name == "g")
        # first iteration comes from entry, later ones from the barrier
        assert phases_at(res, store) == {entry_token(f), barrier_token(f, bw)}
        # the read after the wait sits in the barrier's phase only
        assert phases_at(res, load) == {barrier_token(f, bw)}
        # store and read share the barrier phase: they may run in parallel
        assert phases_at(res, store) & phases_at(res, load)

    def test_trailing_barrier_separates_loop_phases(self):
        body = """
        local int i;
        for (i = 0; i < n; i = i + 1) {
          g = i;
          barrier(b);
          output(g);
          barrier(b2);
        }
        """
        f = slave_fn(body)
        f.number_values()
        res = phase_analysis(f)
        store = next(i for i in f.instructions() if i.opcode == "store")
        load = next(i for i in f.instructions()
                    if i.opcode == "load" and i.global_.name == "g")
        # the second barrier keeps write and read phases disjoint
        assert not (phases_at(res, store) & phases_at(res, load))


class TestLocksets:
    def test_straight_line_lockset(self):
        f = slave_fn("lock(l); g = 1; unlock(l); g = 2;")
        res = lockset_analysis(f)
        s1, s2 = stores(f)
        assert lockset_at(res, s1) == {"l"}
        assert lockset_at(res, s2) == frozenset()

    def test_nested_locks_accumulate(self):
        f = slave_fn("lock(l); lock(l2); g = 1; unlock(l2); g = 2; unlock(l);")
        res = lockset_analysis(f)
        s1, s2 = stores(f)
        assert lockset_at(res, s1) == {"l", "l2"}
        assert lockset_at(res, s2) == {"l"}

    def test_join_intersects(self):
        f = slave_fn(
            "lock(l); if (n > 2) { lock(l2); g = 1; unlock(l2); } "
            "g = 2; unlock(l);")
        res = lockset_analysis(f)
        s1, s2 = stores(f)
        assert lockset_at(res, s1) == {"l", "l2"}
        # only l is held on every path into the merge
        assert lockset_at(res, s2) == {"l"}

    def test_loop_body_keeps_lockset(self):
        body = """
        local int i;
        for (i = 0; i < n; i = i + 1) {
          lock(l); g = i; unlock(l);
        }
        """
        f = slave_fn(body)
        res = lockset_analysis(f)
        (store,) = [i for i in f.instructions() if i.opcode == "store"]
        assert lockset_at(res, store) == {"l"}


class TestFunctionsWithBarriers:
    def test_direct_barriers_only(self):
        extra = "func helper() { barrier(b); }"
        module = compile_source(
            PRELUDE + extra + "\nfunc slave() { helper(); g = 1; }")
        flags = functions_with_barriers(module.function_table)
        assert flags["helper"] is True
        assert flags["slave"] is False  # transitive barriers are the
        # race detector's call-graph closure, not this helper's job
