"""Wire-protocol framing and envelope validation."""

import pytest

from repro.errors import ServeError
from repro.serve import protocol


class TestFraming:
    def test_encode_decode_round_trip(self):
        message = {"op": "ping", "v": 1, "nested": {"a": [1, 2]}}
        line = protocol.encode(message)
        assert line.endswith(b"\n")
        assert protocol.decode(line) == message

    def test_encode_is_deterministic(self):
        a = protocol.encode({"b": 1, "a": 2})
        b = protocol.encode({"a": 2, "b": 1})
        assert a == b

    def test_decode_rejects_garbage(self):
        with pytest.raises(ServeError):
            protocol.decode(b"not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ServeError):
            protocol.decode(b"[1,2,3]\n")

    def test_decode_rejects_oversized_line(self):
        with pytest.raises(ServeError):
            protocol.decode(b"x" * (protocol.MAX_LINE + 1))


class TestEnvelope:
    def test_known_op_passes(self):
        assert protocol.check_request({"op": "ping"}) == "ping"

    def test_unknown_op_rejected(self):
        with pytest.raises(ServeError, match="unknown op"):
            protocol.check_request({"op": "launch_missiles"})

    def test_version_mismatch_rejected(self):
        with pytest.raises(ServeError, match="version"):
            protocol.check_request({"op": "ping", "v": 999})

    def test_responses(self):
        assert protocol.ok(x=1) == {"ok": True, "x": 1}
        assert protocol.error("nope") == {"ok": False, "error": "nope"}
