"""Campaign fabric acceptance: served campaigns are bit-identical to
serial ``run_campaign``, across shard counts, concurrent clients,
graceful drain/restart, and a real server SIGKILL.

The in-process tests run a :class:`ServerThread` against a tmp store;
the SIGKILL test (slow) runs ``python -m repro.serve serve`` as a real
subprocess, kills it mid-campaign, restarts it on the same store, and
compares the final result with the uninterrupted serial baseline.
"""

import asyncio
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.errors import ServeError
from repro.faults import CampaignSpec, run_campaign
from repro.serve import ServeClient, ServeConfig, ServerThread, protocol
from repro.serve.scheduler import CampaignScheduler
from repro.store.artifacts import ArtifactStore
from tests.conftest import FIGURE_1
from tests.store.test_resume import record_view

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def figure1_spec(**overrides):
    base = dict(fault="flip", injections=8, nthreads=4, seed=9,
                output_globals=("result",),
                scalars=(("nprocs", 4),),
                arrays=(("gp", tuple([5, 40, 10, 40] * 16)),))
    base.update(overrides)
    return CampaignSpec.build(FIGURE_1, name="figure1", **base)


def assert_result_identical(served, baseline):
    assert served.stats.counts == baseline.stats.counts
    assert served.stats.baseline_counts == baseline.stats.baseline_counts
    assert ([record_view(r) for r in served.records]
            == [record_view(r) for r in baseline.records])


@pytest.fixture
def server(tmp_path):
    thread = ServerThread(ServeConfig(store_root=str(tmp_path / "store")))
    thread.start()
    yield thread
    thread.stop()


class TestServeIdentity:
    def test_served_campaign_matches_serial(self, server):
        spec = figure1_spec()
        baseline = run_campaign(spec, keep_records=True)
        client = ServeClient(port=server.port)
        job_id = client.submit(spec)
        final = client.wait(job_id, timeout=300)
        assert final["state"] == "done", final
        assert_result_identical(client.fetch(job_id), baseline)

    def test_sharded_submission_matches_serial(self, server):
        spec = figure1_spec(seed=13)
        baseline = run_campaign(spec, keep_records=True)
        client = ServeClient(port=server.port)
        job_id = client.submit(spec, shards=2)
        client.wait(job_id, timeout=300)
        assert_result_identical(client.fetch(job_id), baseline)

    def test_submit_validates_spec_hash(self, server):
        spec = figure1_spec()
        client = ServeClient(port=server.port)
        with pytest.raises(ServeError, match="hash mismatch"):
            client.call("submit", spec=spec.to_dict(),
                        spec_hash="0" * 64)

    def test_golden_and_status_surfaces(self, server):
        spec = figure1_spec(seed=21)
        client = ServeClient(port=server.port)
        assert client.ping()["ok"]
        job_id = client.submit(spec)
        client.wait(job_id, timeout=300)
        golden = client.golden(job_id)
        assert golden["plan_hash"] == spec.plan_hash
        assert re.fullmatch("[0-9a-f]{64}", golden["golden_fingerprint"])
        status = client.status()
        assert status["counters"]["serve.completed"] >= 1
        assert any(j["job_id"] == job_id for j in client.jobs())

    def test_watch_streams_progress_to_end(self, server):
        spec = figure1_spec(seed=34)
        client = ServeClient(port=server.port)
        job_id = client.submit(spec)
        events = list(client.watch(job_id))
        assert events[-1]["event"] == "end"
        assert events[-1]["job"]["state"] == "done"


class TestTwoClientDeterminism:
    def test_concurrent_submissions_match_serial(self, server):
        """Two clients race their submissions; each served result is
        identical to its own serial baseline."""
        specs = [figure1_spec(seed=5), figure1_spec(seed=6)]
        baselines = [run_campaign(s, keep_records=True) for s in specs]
        results = [None, None]
        errors = []

        def submit_and_fetch(slot):
            try:
                client = ServeClient(port=server.port)
                job_id = client.submit(specs[slot],
                                       tenant="client-%d" % slot)
                client.wait(job_id, timeout=300)
                results[slot] = client.fetch(job_id)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=submit_and_fetch, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errors, errors
        for result, baseline in zip(results, baselines):
            assert_result_identical(result, baseline)


class TestBackpressureAndQuota:
    def test_full_queue_rejects_submission(self, tmp_path):
        """With no workers draining it, a size-1 queue admits one job
        and rejects the second with a retryable error."""
        store = ArtifactStore(str(tmp_path / "store"))
        scheduler = CampaignScheduler(
            store, ServeConfig(store_root=store.root, queue_size=1))

        async def scenario():
            await scheduler.start(start_workers=False)
            spec = figure1_spec().to_dict()
            scheduler.submit(spec, None)
            with pytest.raises(ServeError, match="queue full"):
                scheduler.submit(spec, None)

        asyncio.run(scenario())

    def test_quota_evicts_lru_finished_job(self, tmp_path):
        thread = ServerThread(ServeConfig(
            store_root=str(tmp_path / "store"), quota_bytes=1))
        thread.start()
        try:
            client = ServeClient(port=thread.port)
            first = client.submit(figure1_spec(seed=41))
            client.wait(first, timeout=300)
            assert client.status(first)["state"] == "done"
            second = client.submit(figure1_spec(seed=42))
            client.wait(second, timeout=300)
            # A 1-byte budget keeps only the newest result.
            assert client.status(first)["state"] == "evicted"
            with pytest.raises(ServeError, match="evicted"):
                client.fetch_raw(first)
            assert client.fetch(second) is not None
            assert client.status()["counters"]["serve.evicted"] == 1
        finally:
            thread.stop()


class TestDrainResume:
    def test_drain_then_restart_completes_identically(self, tmp_path):
        """A drained server leaves every unfinished job resumable; a
        new server on the same store finishes them bit-identically."""
        root = str(tmp_path / "store")
        spec = figure1_spec(seed=77, injections=12)
        baseline = run_campaign(spec, keep_records=True)

        thread = ServerThread(ServeConfig(store_root=root))
        thread.start()
        client = ServeClient(port=thread.port)
        job_id = client.submit(spec)
        # Drain immediately: the job is queued or just started; either
        # way its state file must survive and resume.
        client.drain()
        thread._thread.join(timeout=60)
        assert not thread._thread.is_alive()

        state = client_free_state(root, job_id)
        assert state in protocol.RESUMABLE_STATES

        second = ServerThread(ServeConfig(store_root=root))
        second.start()
        try:
            client = ServeClient(port=second.port)
            final = client.wait(job_id, timeout=300)
            assert final["state"] == "done"
            assert_result_identical(client.fetch(job_id), baseline)
            assert client.status()["counters"]["serve.resumed"] == 1
        finally:
            second.stop()


def client_free_state(root, job_id):
    """Read a job's persisted state straight from disk (no server)."""
    import json
    path = os.path.join(root, "serve", "jobs", job_id + ".json")
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)["state"]


@pytest.mark.slow
class TestServerSigkillResume:
    """The acceptance scenario: SIGKILL the server mid-campaign,
    restart it on the same store, and the finished result equals the
    uninterrupted serial baseline."""

    NTHREADS = 2
    INJECTIONS = 40
    SEED = 2026

    def spec(self):
        return CampaignSpec.for_kernel(
            "radix", fault="flip", injections=self.INJECTIONS,
            nthreads=self.NTHREADS, seed=self.SEED)

    def start_server(self, root):
        env = dict(os.environ, PYTHONPATH=SRC_ROOT)
        env.pop("REPRO_JOBS", None)
        env.pop("REPRO_STORE", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "serve",
             "--store", root, "--port", "0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        line = proc.stdout.readline()
        match = re.search(r"listening on [\d.]+:(\d+)", line)
        assert match, "server did not report its port: %r" % line
        return proc, int(match.group(1))

    def journal_lines(self, path):
        if not os.path.exists(path):
            return 0
        with open(path) as handle:
            return sum(1 for _ in handle)

    def test_sigkill_mid_campaign_resumes_identically(self, tmp_path):
        root = str(tmp_path / "store")
        spec = self.spec()
        baseline = run_campaign(spec, store=ArtifactStore(
            str(tmp_path / "baseline-store")), keep_records=True)

        proc, port = self.start_server(root)
        killed = False
        try:
            client = ServeClient(port=port)
            job_id = client.submit(spec)
            journal = ArtifactStore(root).journal_path("serve-" + job_id)
            deadline = time.time() + 300
            # Wait for a few checkpointed injections, then kill hard.
            while self.journal_lines(journal) < 6:
                assert proc.poll() is None, "server died on its own"
                assert time.time() < deadline, "no journal progress"
                time.sleep(0.05)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            killed = True
            interrupted = self.journal_lines(journal) - 1
            assert 0 < interrupted < self.INJECTIONS
        finally:
            if not killed and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        proc, port = self.start_server(root)
        try:
            client = ServeClient(port=port)
            final = client.wait(job_id, timeout=300)
            assert final["state"] == "done"
            served = client.fetch(job_id)
            assert len(served.records) == self.INJECTIONS
            assert_result_identical(served, baseline)
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
