"""The fabric's ``triage`` op: server-side reports match local triage,
are stable across calls (store-cached), and fail cleanly."""

import pytest

from repro.errors import ServeError
from repro.faults import CampaignSpec, run_campaign
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.triage import TriageReport
from tests.conftest import FIGURE_1


def figure1_spec(**overrides):
    base = dict(fault="flip", injections=12, nthreads=4, seed=9,
                telemetry=True,
                output_globals=("result",),
                scalars=(("nprocs", 4),),
                arrays=(("gp", tuple([5, 40, 10, 40] * 16)),))
    base.update(overrides)
    return CampaignSpec.build(FIGURE_1, name="figure1", **base)


@pytest.fixture
def server(tmp_path):
    thread = ServerThread(ServeConfig(store_root=str(tmp_path / "store")))
    thread.start()
    yield thread
    thread.stop()


def test_triage_op_matches_local_triage(server):
    spec = figure1_spec()
    client = ServeClient(port=server.port)
    job_id = client.submit(spec, shards=2)
    assert client.wait(job_id, timeout=300)["state"] == "done"

    payload = client.triage(job_id)
    report = TriageReport.from_dict(payload)

    local = run_campaign(spec, keep_records=True).triage(spec=spec)
    assert report.to_json() == local.to_json()


def test_triage_op_is_stable_across_calls(server):
    spec = figure1_spec(seed=21)
    client = ServeClient(port=server.port)
    job_id = client.submit(spec)
    client.wait(job_id, timeout=300)
    assert client.triage(job_id) == client.triage(job_id)


def test_triage_rendering_from_wire_payload(server):
    spec = figure1_spec(seed=33)
    client = ServeClient(port=server.port)
    job_id = client.submit(spec)
    client.wait(job_id, timeout=300)
    text = TriageReport.from_dict(client.triage(job_id)).render_text()
    assert text.startswith("triage: figure1 branch-flip")


def test_triage_of_unknown_job_is_an_error(server):
    client = ServeClient(port=server.port)
    with pytest.raises(ServeError, match="unknown job"):
        client.triage("no-such-job")
