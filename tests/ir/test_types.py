"""Tests for the IR type system."""

import pytest

from repro.ir import (
    ArrayType,
    BOOL,
    FLOAT,
    INT,
    LOCK,
    VOID,
    array_of,
    common_numeric,
    scalar_type,
)


class TestScalars:
    def test_interning(self):
        assert scalar_type("int") is INT
        assert scalar_type("float") is FLOAT
        assert scalar_type("bool") is BOOL

    def test_unknown_scalar_rejected(self):
        with pytest.raises(ValueError):
            scalar_type("double")

    def test_predicates(self):
        assert INT.is_scalar and INT.is_numeric
        assert FLOAT.is_scalar and FLOAT.is_numeric
        assert BOOL.is_scalar and not BOOL.is_numeric
        assert not VOID.is_scalar
        assert LOCK.is_sync and not LOCK.is_scalar


class TestArrays:
    def test_construction(self):
        a = array_of(INT, 16)
        assert isinstance(a, ArrayType)
        assert a.element is INT
        assert a.length == 16
        assert not a.is_scalar
        assert a.name == "int[16]"

    def test_float_arrays(self):
        assert array_of(FLOAT, 4).element is FLOAT

    def test_bad_element_type(self):
        with pytest.raises(ValueError):
            array_of(BOOL, 4)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            array_of(INT, 0)
        with pytest.raises(ValueError):
            array_of(INT, -3)


class TestCommonNumeric:
    def test_int_int(self):
        assert common_numeric(INT, INT) is INT

    def test_float_promotes(self):
        assert common_numeric(INT, FLOAT) is FLOAT
        assert common_numeric(FLOAT, INT) is FLOAT
        assert common_numeric(FLOAT, FLOAT) is FLOAT

    def test_non_numeric(self):
        assert common_numeric(BOOL, INT) is None
        assert common_numeric(INT, VOID) is None
