"""Tests for the IR type system."""

import pytest

from repro.ir import (
    ArrayType,
    BOOL,
    FLOAT,
    INT,
    LOCK,
    VOID,
    array_of,
    common_numeric,
    scalar_type,
)


class TestScalars:
    def test_interning(self):
        assert scalar_type("int") is INT
        assert scalar_type("float") is FLOAT
        assert scalar_type("bool") is BOOL

    def test_unknown_scalar_rejected(self):
        with pytest.raises(ValueError):
            scalar_type("double")

    def test_predicates(self):
        assert INT.is_scalar and INT.is_numeric
        assert FLOAT.is_scalar and FLOAT.is_numeric
        assert BOOL.is_scalar and not BOOL.is_numeric
        assert not VOID.is_scalar
        assert LOCK.is_sync and not LOCK.is_scalar


class TestArrays:
    def test_construction(self):
        a = array_of(INT, 16)
        assert isinstance(a, ArrayType)
        assert a.element is INT
        assert a.length == 16
        assert not a.is_scalar
        assert a.name == "int[16]"

    def test_float_arrays(self):
        assert array_of(FLOAT, 4).element is FLOAT

    def test_bad_element_type(self):
        with pytest.raises(ValueError):
            array_of(BOOL, 4)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            array_of(INT, 0)
        with pytest.raises(ValueError):
            array_of(INT, -3)


class TestCommonNumeric:
    def test_int_int(self):
        assert common_numeric(INT, INT) is INT

    def test_float_promotes(self):
        assert common_numeric(INT, FLOAT) is FLOAT
        assert common_numeric(FLOAT, INT) is FLOAT
        assert common_numeric(FLOAT, FLOAT) is FLOAT

    def test_non_numeric(self):
        assert common_numeric(BOOL, INT) is None
        assert common_numeric(INT, VOID) is None


class TestPickleInterning:
    def test_singletons_survive_pickle(self):
        import pickle
        for type_ in (INT, FLOAT, BOOL, VOID):
            assert pickle.loads(pickle.dumps(type_)) is type_

    def test_array_elements_stay_interned(self):
        import pickle
        array = pickle.loads(pickle.dumps(array_of(FLOAT, 8)))
        assert array.element is FLOAT and array.length == 8

    def test_unpickled_module_keeps_identity_checks(self):
        # The artifact store pickles whole programs; every `x.type is
        # INT` in the runtime must stay valid on the warm-loaded copy.
        import pickle
        from repro.frontend import compile_source
        module = pickle.loads(pickle.dumps(compile_source(
            "global int g;\nfunc slave() { g = g + 1; }", "p")))
        types = {id(inst.type): inst.type
                 for function in module.function_table
                 for inst in function.instructions()}
        for type_ in types.values():
            if type_.is_scalar or type_ is VOID:
                assert type_ in (INT, FLOAT, BOOL, VOID)
