"""Tests for the IR verifier: each structural rule must be enforced."""

import pytest

from repro.errors import VerificationError
from repro.ir import (
    INT,
    Constant,
    Function,
    IRBuilder,
    Jump,
    Module,
    Phi,
    Ret,
    verify_function,
    verify_module,
)


def simple_function():
    f = Function("f", return_type=INT)
    builder = IRBuilder(f.add_block("entry"))
    builder.ret(1)
    return f


class TestStructure:
    def test_valid_function_passes(self):
        verify_function(simple_function())

    def test_empty_function_rejected(self):
        with pytest.raises(VerificationError):
            verify_function(Function("f"))

    def test_unterminated_block_rejected(self):
        f = Function("f")
        builder = IRBuilder(f.add_block())
        builder.add(1, 2)
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(f)

    def test_empty_block_rejected(self):
        f = Function("f")
        builder = IRBuilder(f.add_block())
        builder.ret()
        f.add_block("empty")
        with pytest.raises(VerificationError, match="empty"):
            verify_function(f)

    def test_entry_with_predecessor_rejected(self):
        f = Function("f")
        entry = f.add_block("entry")
        other = f.add_block("other")
        IRBuilder(entry).jmp(other)
        IRBuilder(other).jmp(entry)
        with pytest.raises(VerificationError, match="predecessors"):
            verify_function(f)

    def test_midblock_terminator_rejected(self):
        f = Function("f")
        block = f.add_block()
        # Bypass the append() guard to build the malformed block.
        ret1, ret2 = Ret(), Ret()
        block.instructions = [ret1, ret2]
        ret1.parent = ret2.parent = block
        with pytest.raises(VerificationError, match="mid-block"):
            verify_function(f)


class TestPhis:
    def test_phi_with_wrong_edges_rejected(self):
        f = Function("f")
        entry = f.add_block("entry")
        merge = f.add_block("merge")
        IRBuilder(entry).jmp(merge)
        phi = Phi(INT, "x")
        merge.insert_after_phis(phi)
        phi.parent = merge
        phi.add_incoming(Constant(1), entry)
        phi.add_incoming(Constant(2), f.add_block("fake"))
        IRBuilder(merge).ret()
        # 'fake' block also must be terminated to reach the phi check
        IRBuilder(f.block_named("fake")).ret()
        with pytest.raises(VerificationError, match="incoming"):
            verify_function(f)

    def test_phi_after_non_phi_rejected(self):
        f = Function("f")
        entry = f.add_block("entry")
        merge = f.add_block("merge")
        IRBuilder(entry).jmp(merge)
        builder = IRBuilder(merge)
        builder.add(1, 2)
        phi = Phi(INT, "x")
        phi.add_incoming(Constant(1), entry)
        merge.append(phi)
        builder.ret()
        with pytest.raises(VerificationError, match="phi"):
            verify_function(f)


class TestDominance:
    def test_use_before_def_in_block_rejected(self):
        f = Function("f")
        block = f.add_block()
        builder = IRBuilder(block)
        first = builder.add(1, 2)
        second = builder.add(first, 1)
        builder.ret()
        # Swap: now `second` uses `first` before it is defined.
        block.instructions[0], block.instructions[1] = (
            block.instructions[1], block.instructions[0])
        with pytest.raises(VerificationError, match="dominated"):
            verify_function(f)

    def test_use_across_non_dominating_blocks_rejected(self):
        f = Function("f")
        entry = f.add_block("entry")
        left = f.add_block("left")
        right = f.add_block("right")
        merge = f.add_block("merge")
        builder = IRBuilder(entry)
        cond = builder.cmp("lt", 1, 2)
        builder.br(cond, left, right)
        builder.position_at_end(left)
        defined = builder.add(1, 2)
        builder.jmp(merge)
        IRBuilder(right).jmp(merge)
        builder.position_at_end(merge)
        builder.add(defined, 1)  # not dominated: only defined on left path
        builder.ret()
        with pytest.raises(VerificationError, match="dominated"):
            verify_function(f)


class TestReturns:
    def test_void_function_returning_value_rejected(self):
        f = Function("f")
        builder = IRBuilder(f.add_block())
        builder.block.append(Ret(Constant(1)))
        with pytest.raises(VerificationError, match="void"):
            verify_function(f)

    def test_nonvoid_function_returning_nothing_rejected(self):
        f = Function("f", return_type=INT)
        IRBuilder(f.add_block()).ret()
        with pytest.raises(VerificationError, match="returns nothing"):
            verify_function(f)


class TestModuleReferences:
    def test_foreign_global_rejected(self):
        m = Module("m")
        other = Module("other")
        g = other.add_global("x", INT, 0)
        f = Function("f")
        m.add_function(f)
        builder = IRBuilder(f.add_block())
        builder.load(g)
        builder.ret()
        with pytest.raises(VerificationError, match="global"):
            verify_module(m)

    def test_jump_to_foreign_block_rejected(self):
        m = Module("m")
        f = Function("f")
        g = Function("g")
        m.add_function(f)
        m.add_function(g)
        target = g.add_block()
        IRBuilder(target).ret()
        IRBuilder(f.add_block()).jmp(target)
        with pytest.raises(VerificationError):
            verify_module(m)
