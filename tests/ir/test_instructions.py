"""Tests for IR instruction construction, typing rules, and use lists."""

import pytest

from repro.ir import (
    BOOL,
    FLOAT,
    INT,
    BinOp,
    Branch,
    Cast,
    Cmp,
    Constant,
    Function,
    GlobalVariable,
    Jump,
    LoadElem,
    LoadGlobal,
    Phi,
    Ret,
    StoreGlobal,
    UnaryOp,
    array_of,
)


def blocks(n=2):
    f = Function("f")
    return [f.add_block() for _ in range(n)]


class TestBinOp:
    def test_int_result(self):
        inst = BinOp("add", Constant(1), Constant(2))
        assert inst.type is INT

    def test_float_promotion(self):
        inst = BinOp("mul", Constant(1), Constant(2.0))
        assert inst.type is FLOAT

    def test_int_only_ops_reject_float(self):
        for op in ("mod", "and", "xor", "shl", "shr"):
            with pytest.raises(TypeError):
                BinOp(op, Constant(1.0), Constant(2))

    def test_bool_logic_allowed(self):
        inst = BinOp("and", Constant(True), Constant(False))
        assert inst.type is BOOL

    def test_bool_arith_rejected(self):
        with pytest.raises(TypeError):
            BinOp("add", Constant(True), Constant(1))

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            BinOp("pow", Constant(1), Constant(2))

    def test_use_lists(self):
        c = Constant(5)
        inst = BinOp("add", c, c)
        assert inst.uses == []
        assert c.uses.count(inst) == 2


class TestCmpAndUnary:
    def test_cmp_returns_bool(self):
        assert Cmp("lt", Constant(1), Constant(2)).type is BOOL

    def test_cmp_rejects_mixed_bool(self):
        with pytest.raises(TypeError):
            Cmp("lt", Constant(True), Constant(1))

    def test_not_requires_bool(self):
        assert UnaryOp("not", Constant(True)).type is BOOL
        with pytest.raises(TypeError):
            UnaryOp("not", Constant(1))

    def test_neg_requires_numeric(self):
        assert UnaryOp("neg", Constant(1)).type is INT
        assert UnaryOp("neg", Constant(1.0)).type is FLOAT
        with pytest.raises(TypeError):
            UnaryOp("neg", Constant(True))


class TestCast:
    def test_kinds(self):
        assert Cast("itof", Constant(1)).type is FLOAT
        assert Cast("ftoi", Constant(1.0)).type is INT
        assert Cast("btoi", Constant(True)).type is INT

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Cast("bitcast", Constant(1))


class TestMemoryOps:
    def test_load_store_scalar(self):
        g = GlobalVariable("x", INT, 0)
        load = LoadGlobal(g)
        assert load.type is INT
        store = StoreGlobal(g, Constant(3))
        assert store.global_ is g

    def test_load_array_rejected_as_scalar(self):
        arr = GlobalVariable("a", array_of(INT, 4))
        with pytest.raises(TypeError):
            LoadGlobal(arr)

    def test_loadelem(self):
        arr = GlobalVariable("a", array_of(FLOAT, 4))
        inst = LoadElem(arr, Constant(2))
        assert inst.type is FLOAT

    def test_loadelem_index_must_be_int(self):
        arr = GlobalVariable("a", array_of(INT, 4))
        with pytest.raises(TypeError):
            LoadElem(arr, Constant(1.5))


class TestControlFlow:
    def test_branch_condition_must_be_bool(self):
        b1, b2 = blocks()
        with pytest.raises(TypeError):
            Branch(Constant(1), b1, b2)
        br = Branch(Constant(True), b1, b2)
        assert br.successors() == (b1, b2)
        assert br.bw_info is None

    def test_jump_and_ret(self):
        (b1,) = blocks(1)
        assert Jump(b1).successors() == (b1,)
        assert Ret().successors() == ()
        assert Ret(Constant(1)).value.value == 1


class TestPhi:
    def test_incoming_bookkeeping(self):
        b1, b2 = blocks()
        phi = Phi(INT, "x")
        phi.add_incoming(Constant(1), b1)
        phi.add_incoming(Constant(2), b2)
        assert phi.incoming_for(b1).value == 1
        assert phi.incoming_for(b2).value == 2
        with pytest.raises(KeyError):
            phi.incoming_for(Function("g").add_block())

    def test_remove_incoming(self):
        b1, b2 = blocks()
        phi = Phi(INT)
        c = Constant(1)
        phi.add_incoming(c, b1)
        phi.add_incoming(Constant(2), b2)
        phi.remove_incoming(0)
        assert len(phi.operands) == 1
        assert c.uses == []


class TestOperandMutation:
    def test_set_operand_updates_uses(self):
        a, b = Constant(1), Constant(2)
        inst = BinOp("add", a, a)
        inst.set_operand(0, b)
        assert a.uses == [inst]
        assert b.uses == [inst]

    def test_replace_uses_of(self):
        a, b = Constant(1), Constant(2)
        inst = BinOp("add", a, a)
        inst.replace_uses_of(a, b)
        assert a.uses == []
        assert b.uses.count(inst) == 2

    def test_drop_operands(self):
        a = Constant(1)
        inst = BinOp("add", a, a)
        inst.drop_operands()
        assert a.uses == []
        assert inst.operands == []
