"""Verifier tests for the synchronization-protocol checks."""

import pytest

from repro.errors import VerificationError
from repro.frontend import compile_source

PRELUDE = """
global int n = 8;
global int g;
global lock l;
global lock l2;
global barrier b;
"""


def compile_slave(body: str, extra: str = "", verify: bool = True):
    return compile_source(PRELUDE + extra + "\nfunc slave() { %s }" % body,
                          verify=verify)


class TestMalformedProtocols:
    def test_release_without_acquire(self):
        with pytest.raises(VerificationError,
                           match="without a dominating acquire"):
            compile_slave("unlock(l);")

    def test_release_on_one_path_only(self):
        # the then-path acquires, the else-path does not: the release
        # has no *dominating* acquire
        with pytest.raises(VerificationError,
                           match="without a dominating acquire"):
            compile_slave("if (n > 2) { lock(l); } g = 1; unlock(l);")

    def test_straight_line_double_acquire(self):
        with pytest.raises(VerificationError, match="re-acquires"):
            compile_slave("lock(l); lock(l); g = 1; unlock(l); unlock(l);")

    def test_double_acquire_on_a_path(self):
        with pytest.raises(VerificationError, match="re-acquires"):
            compile_slave(
                "lock(l); if (n > 2) { lock(l); } g = 1; unlock(l);")

    def test_loop_reacquires_unreleased_lock(self):
        body = """
        local int i;
        for (i = 0; i < n; i = i + 1) { lock(l); g = i; }
        """
        with pytest.raises(VerificationError, match="re-acquires"):
            compile_slave(body)

    def test_barrier_while_holding_lock(self):
        with pytest.raises(VerificationError, match="waits on barrier"):
            compile_slave("lock(l); barrier(b); unlock(l);")

    def test_barrier_while_lock_may_be_held(self):
        # held on only one path still deadlocks that schedule
        with pytest.raises(VerificationError, match="waits on barrier"):
            compile_slave(
                "if (n > 2) { lock(l); } barrier(b); "
                "if (n > 2) { unlock(l); }")

    def test_error_names_the_function(self):
        extra = "func helper() { unlock(l2); }"
        with pytest.raises(VerificationError, match="helper"):
            compile_slave("g = 1;", extra=extra)


class TestWellFormedProtocols:
    def test_balanced_pair(self):
        compile_slave("lock(l); g = 1; unlock(l);")

    def test_nested_distinct_locks(self):
        compile_slave("lock(l); lock(l2); g = 1; unlock(l2); unlock(l);")

    def test_conditional_balanced_region(self):
        compile_slave("if (n > 2) { lock(l); g = 1; unlock(l); } g = 2;")

    def test_reacquire_after_release(self):
        compile_slave("lock(l); g = 1; unlock(l); lock(l); g = 2; unlock(l);")

    def test_lock_per_loop_iteration(self):
        body = """
        local int i;
        for (i = 0; i < n; i = i + 1) { lock(l); g = i; unlock(l); }
        """
        compile_slave(body)

    def test_barrier_between_critical_sections(self):
        compile_slave(
            "lock(l); g = 1; unlock(l); barrier(b); "
            "lock(l); g = 2; unlock(l);")

    def test_verify_false_skips_the_checks(self):
        compile_slave("unlock(l);", verify=False)  # must not raise
