"""Tests for the error hierarchy and printer details."""

import pytest

from repro import errors
from repro.frontend import compile_source
from repro.ir import print_module


class TestErrorHierarchy:
    def test_everything_is_reproerror(self):
        for cls in (errors.LexError, errors.ParseError, errors.CodegenError,
                    errors.VerificationError, errors.AnalysisError,
                    errors.InstrumentationError, errors.GuestCrash,
                    errors.GuestHang, errors.GuestDeadlock,
                    errors.SimulationError):
            assert issubclass(cls, errors.ReproError), cls

    def test_guest_failures_are_not_tool_errors(self):
        assert issubclass(errors.GuestCrash, errors.GuestFailure)
        assert not issubclass(errors.GuestCrash, errors.FrontendError)

    def test_frontend_error_formats_position(self):
        err = errors.ParseError("oops", line=3, column=7)
        assert "3" in str(err) and "7" in str(err)
        assert err.line == 3 and err.column == 7

    def test_guest_crash_carries_thread(self):
        crash = errors.GuestCrash("boom", thread_id=5)
        assert crash.thread_id == 5

    def test_catching_the_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.GuestHang("stuck")


class TestPrinter:
    def test_full_module_dump_is_stable(self):
        source = """
        global int n = 3;
        global float f = 0.5;
        global int a[2];
        global lock l;
        global barrier b;
        func slave() {
          local int x = n * 2;
          if (x > 4) { a[0] = x; }
          output(x);
        }
        """
        text = print_module(compile_source(source, "pmod"))
        assert "; module pmod" in text
        assert "global @n : int = 3" in text
        assert "global @f : float = 0.5" in text
        assert "global @a : int[2]" in text
        assert "global @l : lock" in text
        assert "func slave()" in text
        assert "br " in text and "storeelem" in text and "output" in text
        # named registers carry vids for disambiguation (loads are named
        # after their global), anonymous ones are %vN
        assert "%n." in text
        assert "%v" in text
