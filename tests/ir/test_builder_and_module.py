"""Tests for IRBuilder, Function, BasicBlock, and Module containers."""

import pytest

from repro.errors import IRError
from repro.ir import (
    INT,
    BOOL,
    Function,
    IRBuilder,
    Module,
    Phi,
    array_of,
    print_function,
    print_module,
)


def make_function():
    f = Function("f", params=[("x", INT)], return_type=INT)
    return f


class TestFunction:
    def test_entry_is_first_block(self):
        f = make_function()
        entry = f.add_block("entry")
        f.add_block("other")
        assert f.entry is entry

    def test_block_names_unique(self):
        f = make_function()
        a = f.add_block("loop")
        b = f.add_block("loop")
        assert a.name != b.name

    def test_block_named(self):
        f = make_function()
        block = f.add_block("target")
        assert f.block_named("target") is block
        with pytest.raises(KeyError):
            f.block_named("missing")

    def test_signature(self):
        f = make_function()
        assert f.signature == "func f(int x) -> int"


class TestBasicBlock:
    def test_append_after_terminator_rejected(self):
        f = make_function()
        block = f.add_block()
        builder = IRBuilder(block)
        builder.ret(1)
        with pytest.raises(ValueError):
            builder.add(1, 2)

    def test_insert_before_terminator(self):
        f = make_function()
        block = f.add_block()
        builder = IRBuilder(block)
        inst = builder.add(1, 2)
        builder.ret(inst)
        from repro.ir import Constant, Output
        block.insert_before_terminator(Output(Constant(1)))
        assert block.instructions[-1].opcode == "ret"
        assert block.instructions[-2].opcode == "output"

    def test_insert_after_phis(self):
        f = make_function()
        block = f.add_block()
        phi = Phi(INT, "p")
        block.insert_after_phis(phi)
        phi.parent = block
        from repro.ir import Constant, Output
        block.insert_after_phis(Output(Constant(1)))
        assert isinstance(block.instructions[0], Phi)
        assert block.instructions[1].opcode == "output"

    def test_predecessors(self):
        f = make_function()
        a, b, c = f.add_block(), f.add_block(), f.add_block()
        IRBuilder(a).jmp(c)
        IRBuilder(b).jmp(c)
        assert set(p.name for p in c.predecessors()) == {a.name, b.name}


class TestModule:
    def test_globals(self):
        m = Module("m")
        g = m.add_global("x", INT, 7)
        assert m.global_named("x") is g
        with pytest.raises(IRError):
            m.add_global("x", INT)
        with pytest.raises(IRError):
            m.global_named("y")

    def test_function_table_indices(self):
        m = Module("m")
        f1, f2 = Function("a"), Function("b")
        m.add_function(f1)
        m.add_function(f2)
        assert m.function_index("a") == 0
        assert m.function_index("b") == 1
        assert m.function_at(1) is f2
        assert m.function_at(99) is None
        assert m.function_at(-1) is None

    def test_duplicate_function_rejected(self):
        m = Module("m")
        m.add_function(Function("a"))
        with pytest.raises(IRError):
            m.add_function(Function("a"))


class TestBuilderAndPrinter:
    def test_builds_printable_function(self):
        m = Module("m")
        g = m.add_global("g", INT, 0)
        arr = m.add_global("a", array_of(INT, 8))
        f = Function("f", params=[("x", INT)], return_type=INT)
        m.add_function(f)
        entry = f.add_block("entry")
        then_block = f.add_block("then")
        done = f.add_block("done")
        builder = IRBuilder(entry)
        loaded = builder.load(g)
        cond = builder.cmp("lt", f.params[0], loaded)
        builder.br(cond, then_block, done)
        builder.position_at_end(then_block)
        builder.storeelem(arr, 0, f.params[0])
        builder.jmp(done)
        builder.position_at_end(done)
        builder.ret(0)

        text = print_function(f)
        assert "func f(int x) -> int" in text
        assert "cmp.lt" in text
        assert "storeelem" in text
        module_text = print_module(m)
        assert "global @g : int = 0" in module_text
        assert "global @a : int[8]" in module_text

    def test_builder_wraps_python_literals(self):
        f = Function("f")
        builder = IRBuilder(f.add_block())
        inst = builder.add(1, 2)
        assert inst.lhs.value == 1 and inst.rhs.value == 2
        cond = builder.cmp("eq", inst, 3)
        assert cond.type is BOOL

    def test_builder_requires_block(self):
        builder = IRBuilder()
        with pytest.raises(ValueError):
            builder.add(1, 2)
